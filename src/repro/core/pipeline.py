"""End-to-end pipelines: Cross Binary SimPoint and the per-binary baseline.

:func:`run_cross_binary_simpoint` performs the paper's six steps
(Section 3.2) over a set of binaries compiled from the same source and
run with the same input. :func:`run_per_binary_simpoint` is the
baseline it is compared against: ordinary SimPoint over fixed-length
intervals, run independently on one binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compilation.binary import Binary
from repro.core.mapping import (
    MappedSimulationPoint,
    interval_boundaries,
    map_simulation_points,
)
from repro.core.markers import ExecutionCoordinate, MarkerSet
from repro.core.matching import MatchReport, find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.core.weights import measure_interval_instructions, phase_weights
from repro.errors import MatchingError
from repro.observability import metrics, trace
from repro.observability.session import record_matching
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile
from repro.profiling.intervals import Interval
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.runtime.cache import ProfileCache, cache_from_root, merge_stats
from repro.runtime.config import active_cache
from repro.runtime.parallel import parallel_map
from repro.simpoint.simpoint import SimPointConfig, SimPointResult, run_simpoint


@dataclass(frozen=True)
class CrossBinaryConfig:
    """Configuration of the cross-binary pipeline.

    ``interval_size`` is the desired interval size in instructions of
    the *primary* binary (the paper uses 100M on full SPEC runs; our
    scaled default is 100K — see DESIGN.md). ``primary_index`` selects
    the primary binary; the paper notes the choice is arbitrary but
    affects mapped interval sizes (our ablation benchmark measures it).
    ``match_confidence`` is the fuzzy-matcher acceptance threshold;
    ``None`` defers to ``REPRO_MATCH_CONFIDENCE`` / the process default
    (see :func:`repro.runtime.config.resolve_match_confidence`), and
    the ultimate default of 1.0 disables the fuzzy fallback entirely.
    """

    interval_size: int = 100_000
    simpoint: SimPointConfig = field(default_factory=SimPointConfig)
    program_input: ProgramInput = REF_INPUT
    primary_index: int = 0
    enable_signature_recovery: bool = True
    match_confidence: Optional[float] = None


@dataclass(frozen=True)
class CrossBinaryResult:
    """Everything the cross-binary pipeline produces."""

    marker_set: MarkerSet
    match_report: MatchReport
    primary_name: str
    intervals: Tuple[Interval, ...]
    simpoint: SimPointResult
    mapped_points: Tuple[MappedSimulationPoint, ...]
    boundaries: Tuple[ExecutionCoordinate, ...]
    interval_instructions: Mapping[str, Tuple[int, ...]]
    weights: Mapping[str, Mapping[int, float]]

    def weights_for(self, binary_name: str) -> Mapping[int, float]:
        try:
            return self.weights[binary_name]
        except KeyError:
            known = ", ".join(sorted(self.weights))
            raise MatchingError(
                f"no weights for {binary_name!r}; known: {known}"
            ) from None


def _callbranch_task(task):
    """Worker: call-branch profile for one binary (cache-aware)."""
    binary, program_input, cache_root = task
    cache = cache_from_root(cache_root)
    profile = collect_call_branch_profile(
        binary, program_input, cache=cache
    )
    return profile, (cache.stats if cache is not None else None)


def _measure_task(task):
    """Worker: per-interval instruction counts for one binary."""
    binary, marker_set, boundaries, program_input, cache_root = task
    cache = cache_from_root(cache_root)
    counts = measure_interval_instructions(
        binary, marker_set, boundaries, program_input, cache=cache
    )
    return counts, (cache.stats if cache is not None else None)


def run_cross_binary_simpoint(
    binaries: Sequence[Binary],
    config: CrossBinaryConfig = CrossBinaryConfig(),
    *,
    jobs: Optional[int] = None,
    cache: Optional[ProfileCache] = None,
) -> CrossBinaryResult:
    """Run the full Cross Binary SimPoint pipeline.

    ``binaries`` must all be compilations of the same program, and they
    are all run with ``config.program_input``. Steps 1 (call-branch
    profiling) and 6 (per-binary weight re-measurement) are independent
    per binary and fan out over ``jobs`` worker processes; profiles go
    through the profile cache when one is active. Both knobs default to
    the process-wide runtime configuration, and neither changes the
    result: parallel cached runs are bit-identical to serial uncached
    ones.
    """
    if len(binaries) < 2:
        raise MatchingError("need at least two binaries to cross-map")
    if not 0 <= config.primary_index < len(binaries):
        raise MatchingError(
            f"primary_index {config.primary_index} out of range for "
            f"{len(binaries)} binaries"
        )
    programs = {binary.program_name for binary in binaries}
    if len(programs) != 1:
        raise MatchingError(
            f"binaries come from different programs: {sorted(programs)}"
        )

    cache = cache if cache is not None else active_cache()
    cache_root = cache.root if cache is not None else None

    # Step 1: call-and-branch profile for each binary (fan-out).
    with trace.span("profile", binaries=len(binaries)):
        profile_results = parallel_map(
            _callbranch_task,
            [
                (binary, config.program_input, cache_root)
                for binary in binaries
            ],
            jobs=jobs,
        )
    merge_stats(cache, [stats for _, stats in profile_results])
    profiles = [
        (binary, profile)
        for binary, (profile, _) in zip(binaries, profile_results)
    ]
    # Step 2: mappable points that exist in all binaries.
    with trace.span("match"):
        marker_set, match_report = find_mappable_points(
            profiles,
            enable_signature_recovery=config.enable_signature_recovery,
            match_confidence=config.match_confidence,
        )
    metrics.counter("pipeline.mappable_points").inc(marker_set.n_points)
    fuzzy_count = len(marker_set.fuzzy_points())
    if fuzzy_count:
        metrics.counter("pipeline.fuzzy_points").inc(fuzzy_count)
    record_matching(binaries[0].program_name, match_report.to_summary())
    if marker_set.n_points == 0:
        raise MatchingError(
            f"{binaries[0].program_name}: no mappable points survive "
            f"matching at confidence threshold "
            f"{match_report.confidence_threshold:g}; lower "
            f"--match-confidence (or REPRO_MATCH_CONFIDENCE) to accept "
            f"fuzzy matches"
        )
    # Step 3: VLIs over the primary binary.
    primary = binaries[config.primary_index]
    with trace.span("vli_profile", primary=primary.name):
        intervals = collect_vli_bbvs(
            primary, marker_set, config.interval_size,
            config.program_input, cache=cache,
        )
    metrics.counter("pipeline.intervals_profiled").inc(len(intervals))
    # Step 4: SimPoint on the primary binary's VLI BBVs.
    with trace.span("simpoint", intervals=len(intervals)):
        simpoint_result = run_simpoint(
            intervals, config.simpoint, jobs=jobs, cache=cache
        )
    # Step 5: map simulation points to all binaries (definitional).
    with trace.span("map_points"):
        mapped_points = map_simulation_points(intervals, simpoint_result)
        boundaries = interval_boundaries(intervals)
    # Step 6: re-measure weights per binary (fan-out).
    with trace.span("weights", binaries=len(binaries)):
        measure_results = parallel_map(
            _measure_task,
            [
                (binary, marker_set, boundaries, config.program_input,
                 cache_root)
                for binary in binaries
            ],
            jobs=jobs,
        )
    merge_stats(cache, [stats for _, stats in measure_results])
    interval_instructions: Dict[str, Tuple[int, ...]] = {}
    weights: Dict[str, Dict[int, float]] = {}
    for binary, (counts, _) in zip(binaries, measure_results):
        interval_instructions[binary.name] = tuple(counts)
        weights[binary.name] = phase_weights(counts, simpoint_result.labels)
    return CrossBinaryResult(
        marker_set=marker_set,
        match_report=match_report,
        primary_name=primary.name,
        intervals=tuple(intervals),
        simpoint=simpoint_result,
        mapped_points=mapped_points,
        boundaries=boundaries,
        interval_instructions=interval_instructions,
        weights=weights,
    )


def run_per_binary_simpoint(
    binary: Binary,
    interval_size: int = 100_000,
    config: Optional[SimPointConfig] = None,
    program_input: ProgramInput = REF_INPUT,
    *,
    cache: Optional[ProfileCache] = None,
) -> Tuple[List[Interval], SimPointResult]:
    """The paper's baseline: FLI SimPoint on one binary in isolation."""
    with trace.span("fli_profile", binary=binary.name):
        intervals = collect_fli_bbvs(
            binary, interval_size, program_input, cache=cache
        )
    metrics.counter("pipeline.intervals_profiled").inc(len(intervals))
    with trace.span("fli_simpoint", binary=binary.name):
        result = run_simpoint(
            intervals, config or SimPointConfig(), cache=cache
        )
    return intervals, result


def _per_binary_task(task):
    """Worker: the FLI baseline for one binary (cache-aware)."""
    binary, interval_size, config, program_input, cache_root = task
    cache = cache_from_root(cache_root)
    intervals, result = run_per_binary_simpoint(
        binary, interval_size, config, program_input, cache=cache
    )
    return (intervals, result), (
        cache.stats if cache is not None else None
    )


def run_per_binary_simpoints(
    binaries: Sequence[Binary],
    interval_size: int = 100_000,
    config: Optional[SimPointConfig] = None,
    program_input: ProgramInput = REF_INPUT,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ProfileCache] = None,
) -> Dict[str, Tuple[List[Interval], SimPointResult]]:
    """The FLI baseline over several binaries, fanned out over workers.

    Returns results keyed by binary name, in ``binaries`` order (dicts
    preserve insertion order); identical to calling
    :func:`run_per_binary_simpoint` on each binary serially.
    """
    cache = cache if cache is not None else active_cache()
    cache_root = cache.root if cache is not None else None
    results = parallel_map(
        _per_binary_task,
        [
            (binary, interval_size, config, program_input, cache_root)
            for binary in binaries
        ],
        jobs=jobs,
    )
    merge_stats(cache, [stats for _, stats in results])
    return {
        binary.name: payload
        for binary, (payload, _) in zip(binaries, results)
    }
