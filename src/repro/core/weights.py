"""Per-binary weight re-measurement (paper Section 3.2.6).

A simulation point's weight is the fraction of the binary's dynamic
instructions spent in its phase. The phase *membership* of each mapped
interval comes from the primary binary's clustering, but the amount of
execution per interval changes across binaries (optimized code executes
fewer instructions for the same semantic region), so the weights must
be re-measured by running each binary and counting instructions between
the mapped interval boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compilation.binary import Binary, LLoop
from repro.core.markers import ExecutionCoordinate, MarkerSet
from repro.errors import MappingError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import (
    ExecutionConsumer,
    IterationProfile,
    iteration_profile,
)
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.runtime.cache import ProfileCache
from repro.runtime.config import active_cache, trace_replay_enabled


class IntervalInstructionCounter(ExecutionConsumer):
    """Counts instructions per mapped interval while a binary runs.

    ``boundaries`` is the ordered list of interior interval boundaries
    (from :func:`repro.core.mapping.interval_boundaries`). The counter
    watches marker firings and closes an interval exactly when the next
    expected coordinate fires. If execution ends with boundaries left
    unmatched, the mapping was invalid and an error is raised.
    """

    def __init__(
        self,
        binary: Binary,
        marker_set: MarkerSet,
        boundaries: Sequence[ExecutionCoordinate],
    ) -> None:
        self._binary = binary
        self._block_to_marker = marker_set.table_for(
            binary.name
        ).block_to_marker()
        self._boundaries: Tuple[ExecutionCoordinate, ...] = tuple(boundaries)
        self._next = 0
        self._marker_counts: Dict[int, int] = {}
        self._current = 0
        self._profiles: Dict[int, IterationProfile] = {}
        self.interval_instructions: List[int] = []

    def _profile(self, loop: LLoop) -> IterationProfile:
        """Per-loop iteration profile, resolved once per counter."""
        profile = self._profiles.get(loop.loop_id)
        if profile is None:
            profile = iteration_profile(self._binary, loop)
            self._profiles[loop.loop_id] = profile
        return profile

    def _close(self) -> None:
        self.interval_instructions.append(self._current)
        self._current = 0
        self._next += 1

    def _fire(self, marker_id: int, new_count: int) -> None:
        if self._next < len(self._boundaries):
            expected_marker, expected_count = self._boundaries[self._next]
            if expected_marker == marker_id and expected_count == new_count:
                self._close()

    def on_block(self, block_id: int, execs: int = 1) -> None:
        instructions = self._binary.blocks[block_id].instructions
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is None:
            self._current += instructions * execs
            return
        count = self._marker_counts.get(marker_id, 0)
        remaining = execs
        while remaining > 0:
            take = remaining
            if self._next < len(self._boundaries):
                expected_marker, expected_count = self._boundaries[self._next]
                if (
                    expected_marker == marker_id
                    and count < expected_count <= count + remaining
                ):
                    take = expected_count - count
            self._current += instructions * take
            count += take
            remaining -= take
            self._fire(marker_id, count)
        self._marker_counts[marker_id] = count

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = self._profile(loop)
        marker_id = self._block_to_marker.get(profile.branch_block)
        per_iter = profile.instructions_per_iteration
        if marker_id is None:
            self._current += per_iter * iterations
            return
        count = self._marker_counts.get(marker_id, 0)
        remaining = iterations
        while remaining > 0:
            take = remaining
            if self._next < len(self._boundaries):
                expected_marker, expected_count = self._boundaries[self._next]
                if (
                    expected_marker == marker_id
                    and count < expected_count <= count + remaining
                ):
                    take = expected_count - count
            self._current += per_iter * take
            count += take
            remaining -= take
            self._fire(marker_id, count)
        self._marker_counts[marker_id] = count

    def finish(self) -> None:
        if self._next != len(self._boundaries):
            missing = self._boundaries[self._next]
            raise MappingError(
                f"{self._binary.name}: execution ended with boundary "
                f"{missing} (index {self._next}) never reached - "
                f"the mapped coordinates do not exist in this binary"
            )
        self.interval_instructions.append(self._current)


def measure_interval_instructions(
    binary: Binary,
    marker_set: MarkerSet,
    boundaries: Sequence[ExecutionCoordinate],
    program_input: ProgramInput = REF_INPUT,
    *,
    cache: Optional[ProfileCache] = None,
    use_trace: Optional[bool] = None,
) -> List[int]:
    """Instructions per mapped interval for one binary (functional run).

    By default the counts are replayed from the compiled execution
    trace (:mod:`repro.execution.trace`) as a segment sum between
    boundary firing positions — bit-identical to the scalar counter;
    ``use_trace=False`` (or ``REPRO_NO_TRACE=1``) forces the scalar
    oracle. With a cache (explicit or the process-wide one), the counts
    are memoized by ``(binary, input, this binary's marker table, the
    boundary coordinates)`` fingerprint.
    """
    replay = trace_replay_enabled(use_trace)
    cache = cache if cache is not None else active_cache()

    def compute() -> List[int]:
        if replay:
            from repro.execution.trace import (
                compiled_trace,
                replay_interval_counts,
            )

            trace = compiled_trace(binary, program_input, cache=cache)
            return replay_interval_counts(
                trace, binary, marker_set, boundaries
            )
        counter = IntervalInstructionCounter(binary, marker_set, boundaries)
        ExecutionEngine(binary, program_input).run(counter)
        return counter.interval_instructions

    if cache is None:
        return compute()
    return cache.get_or_compute(
        "interval-counts",
        (
            binary,
            program_input,
            marker_set.table_for(binary.name),
            tuple(boundaries),
        ),
        compute,
    )


def phase_weights(
    interval_instructions: Sequence[int],
    labels: Sequence[int],
) -> Dict[int, float]:
    """Per-phase instruction-fraction weights for one binary.

    ``labels`` assigns each mapped interval to a phase (from the
    primary binary's clustering); ``interval_instructions`` is that
    binary's measured instruction count per interval.
    """
    if len(interval_instructions) != len(labels):
        raise MappingError(
            f"got {len(interval_instructions)} interval counts but "
            f"{len(labels)} labels"
        )
    total = float(sum(interval_instructions))
    if total <= 0:
        raise MappingError("no instructions executed")
    weights: Dict[int, float] = {}
    for instructions, label in zip(interval_instructions, labels):
        weights[label] = weights.get(label, 0.0) + instructions
    return {label: weight / total for label, weight in weights.items()}
