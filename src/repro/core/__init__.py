"""Cross Binary SimPoint — the paper's primary contribution.

Pipeline (paper Section 3.2):

1. profile every binary's calls and branches
   (:mod:`repro.profiling.callbranch`);
2. find *mappable points* that exist in all binaries
   (:mod:`repro.core.matching` over the model in
   :mod:`repro.core.markers`);
3. break the primary binary's execution into variable-length intervals
   bounded by mappable markers (:mod:`repro.core.vli`);
4. run SimPoint on the primary binary's VLI BBVs
   (:mod:`repro.simpoint`);
5. map the chosen simulation points to every binary as
   ``(marker, execution count)`` regions (:mod:`repro.core.mapping`);
6. re-measure each binary's per-phase weights
   (:mod:`repro.core.weights`).

:func:`repro.core.pipeline.run_cross_binary_simpoint` orchestrates all
six steps; :func:`repro.core.pipeline.run_per_binary_simpoint` is the
paper's baseline (independent fixed-length-interval SimPoint per
binary).
"""

from repro.core.mapping import MappedSimulationPoint, map_simulation_points
from repro.core.markers import (
    ExecutionCoordinate,
    MappablePoint,
    MarkerKind,
    MarkerSet,
    MarkerTable,
)
from repro.core.matching import MatchReport, find_mappable_points
from repro.core.pipeline import (
    CrossBinaryConfig,
    CrossBinaryResult,
    run_cross_binary_simpoint,
    run_per_binary_simpoint,
    run_per_binary_simpoints,
)
from repro.core.vli import VLIBuilder, collect_vli_bbvs
from repro.core.weights import measure_interval_instructions, phase_weights

__all__ = [
    "MappedSimulationPoint",
    "map_simulation_points",
    "ExecutionCoordinate",
    "MappablePoint",
    "MarkerKind",
    "MarkerSet",
    "MarkerTable",
    "MatchReport",
    "find_mappable_points",
    "CrossBinaryConfig",
    "CrossBinaryResult",
    "run_cross_binary_simpoint",
    "run_per_binary_simpoint",
    "run_per_binary_simpoints",
    "VLIBuilder",
    "collect_vli_bbvs",
    "measure_interval_instructions",
    "phase_weights",
]
