"""Mapping chosen simulation points to every binary (paper Section 3.2.5).

Because VLI boundaries are execution coordinates over mappable markers,
mapping is definitional: the same ``(marker, count)`` pair names the
start and end of the simulation point in every binary. This module
packages the chosen intervals as :class:`MappedSimulationPoint` regions
("nothing needs to be done in this step", as the paper puts it) and
provides the boundary list used to locate all intervals in any binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.markers import ExecutionCoordinate
from repro.errors import MappingError
from repro.profiling.intervals import Interval
from repro.simpoint.simpoint import SimPointResult


@dataclass(frozen=True)
class MappedSimulationPoint:
    """One simulation point, expressed in cross-binary coordinates.

    ``start`` is ``None`` for a region beginning at program start;
    ``end`` is ``None`` for a region running to program exit.
    ``primary_weight`` is the phase weight measured on the primary
    binary; per-binary weights are re-measured by
    :mod:`repro.core.weights`.
    """

    cluster: int
    interval_index: int
    start: Optional[ExecutionCoordinate]
    end: Optional[ExecutionCoordinate]
    primary_weight: float


def interval_boundaries(
    intervals: Sequence[Interval],
) -> Tuple[ExecutionCoordinate, ...]:
    """The ordered interior boundaries of a VLI interval list.

    These are the coordinates needed to re-locate every interval in any
    other binary: interval *i* spans boundary *i-1* to boundary *i*.
    """
    boundaries: List[ExecutionCoordinate] = []
    for interval in intervals[:-1]:
        if interval.end_coord is None:
            raise MappingError(
                f"interval {interval.index} has no end coordinate; "
                f"were these intervals built by the VLI builder?"
            )
        boundaries.append(interval.end_coord)
    if intervals and intervals[-1].end_coord is not None:
        raise MappingError(
            "the final interval must run to program exit (end_coord None)"
        )
    return tuple(boundaries)


def map_simulation_points(
    intervals: Sequence[Interval],
    simpoint_result: SimPointResult,
) -> Tuple[MappedSimulationPoint, ...]:
    """Express SimPoint's chosen intervals as mappable regions."""
    mapped: List[MappedSimulationPoint] = []
    for point in simpoint_result.points:
        if not 0 <= point.interval_index < len(intervals):
            raise MappingError(
                f"simulation point references interval "
                f"{point.interval_index}, but only {len(intervals)} exist"
            )
        interval = intervals[point.interval_index]
        mapped.append(
            MappedSimulationPoint(
                cluster=point.cluster,
                interval_index=point.interval_index,
                start=interval.start_coord,
                end=interval.end_coord,
                primary_weight=point.weight,
            )
        )
    return tuple(mapped)
