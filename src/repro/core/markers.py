"""Mappable points, markers, and execution coordinates.

A :class:`MappablePoint` is a code construct — a procedure entry, a
loop entry, or a loop back-edge branch — that the matcher has verified
exists in *every* binary of the set with an identical whole-run
execution count. Because the counts match, "the k-th firing of marker
m" names the same semantic moment of execution in every binary: an
:data:`ExecutionCoordinate` ``(marker id, execution count)`` is the
paper's cross-binary position representation (Section 3.2.2).

A :class:`MarkerTable` binds the abstract marker ids to one binary's
concrete anchor blocks, letting execution consumers detect marker
firings by watching block executions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import MatchingError

#: ``(marker id, cumulative execution count)``; counts are 1-based and
#: refer to the state *after* the firing.
ExecutionCoordinate = Tuple[int, int]


class MarkerKind(enum.Enum):
    """What construct a mappable point anchors to."""

    PROCEDURE = "procedure"
    LOOP_ENTRY = "loop_entry"
    LOOP_BRANCH = "loop_branch"


@dataclass(frozen=True)
class MappablePoint:
    """A construct identified in every binary with equal counts.

    ``key`` is the cross-binary identity the matcher used: for
    procedures ``('proc', name)``; for line-matched loops
    ``('line', file, line, kind)``; for loops recovered by the
    count-signature heuristic ``('sig', entries, iterations, kind)``;
    for fuzzy fallback matches ``('fuzzy-proc', canonical name)`` or
    ``('fuzzy', canonical name, kind)``.

    ``confidence`` is 1.0 for the exact matching stages; the fuzzy
    fallback emits strictly lower values quantifying how sure the
    matcher is that the construct identities line up. The whole-run
    count equality invariant holds at *any* confidence — a fuzzy
    marker still fires ``total_count`` times in every binary, only the
    claim that those firings name the same semantic moment is scored.
    """

    marker_id: int
    kind: MarkerKind
    key: Tuple
    total_count: int
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.total_count <= 0:
            raise MatchingError(
                f"mappable point {self.key} has non-positive count "
                f"{self.total_count}"
            )
        if not 0.0 < self.confidence <= 1.0:
            raise MatchingError(
                f"mappable point {self.key} has confidence "
                f"{self.confidence}, expected a value in (0, 1]"
            )


@dataclass(frozen=True)
class MarkerTable:
    """Marker anchors for one binary: marker id <-> anchor block id."""

    binary_name: str
    anchor_blocks: Mapping[int, int]  # marker_id -> block id

    def block_to_marker(self) -> Dict[int, int]:
        """Inverse map: anchor block id -> marker id."""
        inverse: Dict[int, int] = {}
        for marker_id, block_id in self.anchor_blocks.items():
            if block_id in inverse:
                raise MatchingError(
                    f"{self.binary_name}: block {block_id} anchors two "
                    f"markers ({inverse[block_id]} and {marker_id})"
                )
            inverse[block_id] = marker_id
        return inverse


@dataclass(frozen=True)
class MarkerSet:
    """The matched mappable points plus per-binary anchor tables."""

    points: Tuple[MappablePoint, ...]
    tables: Mapping[str, MarkerTable]  # keyed by Binary.name

    def __post_init__(self) -> None:
        ids = {point.marker_id for point in self.points}
        for table in self.tables.values():
            missing = ids - set(table.anchor_blocks)
            if missing:
                raise MatchingError(
                    f"{table.binary_name}: markers {sorted(missing)} have "
                    f"no anchors"
                )

    @property
    def n_points(self) -> int:
        return len(self.points)

    def table_for(self, binary_name: str) -> MarkerTable:
        try:
            return self.tables[binary_name]
        except KeyError:
            known = ", ".join(sorted(self.tables))
            raise MatchingError(
                f"no marker table for {binary_name!r}; known: {known}"
            ) from None

    def point(self, marker_id: int) -> MappablePoint:
        for candidate in self.points:
            if candidate.marker_id == marker_id:
                return candidate
        raise MatchingError(f"unknown marker id {marker_id}")

    def points_of_kind(self, kind: MarkerKind) -> Tuple[MappablePoint, ...]:
        return tuple(p for p in self.points if p.kind is kind)

    def min_confidence(self) -> float:
        """The weakest per-marker confidence (1.0 for an empty set)."""
        if not self.points:
            return 1.0
        return min(point.confidence for point in self.points)

    def fuzzy_points(self) -> Tuple[MappablePoint, ...]:
        """Points matched by the fuzzy fallback (confidence < 1)."""
        return tuple(p for p in self.points if p.confidence < 1.0)
