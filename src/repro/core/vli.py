"""Variable-length interval construction (paper Section 3.2.3).

Execution of the *primary binary* is cut into intervals of at least the
target size, each ending at the first mappable-marker firing after the
target is reached. Boundaries are recorded as execution coordinates
``(marker id, cumulative firing count)``, which name the same semantic
moment in every binary — that is what makes the intervals mappable.

The builder consumes the engine's bulk stream directly: only marker
anchor blocks can end intervals, and within an innermost-loop iteration
span only the back-edge branch can be a marker, so boundary placement
inside a span reduces to integer arithmetic over whole iterations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compilation.binary import Binary, LLoop
from repro.core.markers import ExecutionCoordinate, MarkerSet, MarkerTable
from repro.errors import ProfilingError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import (
    ExecutionConsumer,
    IterationProfile,
    iteration_profile,
)
from repro.profiling.intervals import Interval
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.runtime.cache import ProfileCache
from repro.runtime.config import active_cache, trace_replay_enabled


class VLIBuilder(ExecutionConsumer):
    """Streams one binary's execution into marker-bounded VLIs."""

    def __init__(
        self, binary: Binary, table: MarkerTable, target_size: int
    ) -> None:
        if target_size <= 0:
            raise ProfilingError(
                f"target_size must be positive, got {target_size}"
            )
        if table.binary_name != binary.name:
            raise ProfilingError(
                f"marker table is for {table.binary_name!r}, "
                f"not {binary.name!r}"
            )
        self._binary = binary
        self._target = target_size
        self._block_to_marker = table.block_to_marker()
        self._marker_counts: Dict[int, int] = {}
        self._current: Dict[int, float] = {}
        self._current_instr = 0
        self._last_boundary: Optional[ExecutionCoordinate] = None
        self._profiles: Dict[int, IterationProfile] = {}
        self.intervals: List[Interval] = []

    def _profile(self, loop: LLoop) -> IterationProfile:
        """Per-loop iteration profile, resolved once per builder."""
        profile = self._profiles.get(loop.loop_id)
        if profile is None:
            profile = iteration_profile(self._binary, loop)
            self._profiles[loop.loop_id] = profile
        return profile

    def _attribute(self, block_id: int, instructions: int) -> None:
        self._current[block_id] = self._current.get(block_id, 0.0) + instructions
        self._current_instr += instructions

    def _emit(self, end: Optional[ExecutionCoordinate]) -> None:
        self.intervals.append(
            Interval(
                index=len(self.intervals),
                instructions=self._current_instr,
                bbv=self._current,
                start_coord=self._last_boundary,
                end_coord=end,
            )
        )
        self._current = {}
        self._current_instr = 0
        self._last_boundary = end

    def on_block(self, block_id: int, execs: int = 1) -> None:
        instructions = self._binary.blocks[block_id].instructions
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is None:
            self._attribute(block_id, instructions * execs)
            return
        count = self._marker_counts.get(marker_id, 0)
        for _ in range(execs):
            count += 1
            self._attribute(block_id, instructions)
            if self._current_instr >= self._target:
                self._emit((marker_id, count))
        self._marker_counts[marker_id] = count

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = self._profile(loop)
        marker_id = self._block_to_marker.get(profile.branch_block)
        if marker_id is None:
            # No marker can fire inside this span; attribute in bulk.
            for block_id in profile.body_blocks:
                self._attribute(
                    block_id,
                    self._binary.blocks[block_id].instructions * iterations,
                )
            self._attribute(
                profile.branch_block,
                profile.branch_instructions * iterations,
            )
            return
        per_iter = profile.instructions_per_iteration
        count = self._marker_counts.get(marker_id, 0)
        remaining = iterations
        while remaining > 0:
            shortfall = self._target - self._current_instr
            if shortfall <= 0:
                take = 1  # already past target: cut at the very next firing
            else:
                take = min(remaining, -(-shortfall // per_iter))  # ceil div
            for block_id in profile.body_blocks:
                self._attribute(
                    block_id,
                    self._binary.blocks[block_id].instructions * take,
                )
            self._attribute(
                profile.branch_block, profile.branch_instructions * take
            )
            count += take
            remaining -= take
            if self._current_instr >= self._target:
                self._emit((marker_id, count))
        self._marker_counts[marker_id] = count

    def finish(self) -> None:
        if self._current_instr > 0:
            self._emit(None)
        elif self.intervals:
            # The run ended exactly at a marker firing that closed an
            # interval. Re-express that interval as running to program
            # exit, so binaries that execute trailing work after the
            # same firing attribute it to the final interval.
            last = self.intervals[-1]
            self.intervals[-1] = Interval(
                index=last.index,
                instructions=last.instructions,
                bbv=last.bbv,
                start_coord=last.start_coord,
                end_coord=None,
            )
            self._last_boundary = None

    def marker_counts(self) -> Dict[int, int]:
        """Cumulative firing counts observed (for validation)."""
        return dict(self._marker_counts)


def collect_vli_bbvs(
    binary: Binary,
    marker_set: MarkerSet,
    target_size: int,
    program_input: ProgramInput = REF_INPUT,
    *,
    cache: Optional[ProfileCache] = None,
    use_trace: Optional[bool] = None,
) -> List[Interval]:
    """Profile a binary into mappable variable-length intervals.

    By default the intervals are replayed from the compiled execution
    trace (:mod:`repro.execution.trace`) — bit-identical to the scalar
    builder; ``use_trace=False`` (or ``REPRO_NO_TRACE=1``) forces the
    scalar oracle. With a cache (explicit or the process-wide one), the
    profile is memoized by ``(binary, input, this binary's marker
    table, target size)`` fingerprint — only the table matters, since
    the builder never consults the other binaries' anchors.
    """
    table = marker_set.table_for(binary.name)
    replay = trace_replay_enabled(use_trace)
    cache = cache if cache is not None else active_cache()

    def compute() -> List[Interval]:
        if replay:
            from repro.execution.trace import compiled_trace, replay_vli

            trace = compiled_trace(binary, program_input, cache=cache)
            return replay_vli(trace, binary, table, target_size)
        builder = VLIBuilder(binary, table, target_size)
        ExecutionEngine(binary, program_input).run(builder)
        return builder.intervals

    if cache is None:
        return compute()
    return cache.get_or_compute(
        "vli", (binary, program_input, table, target_size), compute
    )
