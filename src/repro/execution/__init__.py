"""Deterministic execution engine and Pin-like instrumentation.

The paper profiles binaries with Pin. Here,
:class:`~repro.execution.engine.ExecutionEngine` walks a compiled
:class:`~repro.compilation.binary.Binary` under a program input and
drives :class:`~repro.execution.events.ExecutionConsumer` objects with
an exact, ordered stream of basic-block executions. Innermost
straight-line loops are delivered as bulk *iteration spans*
(:meth:`~repro.execution.events.ExecutionConsumer.on_iterations`) so
profilers can process millions of instructions in bulk while consumers
that need precise boundaries can split spans at iteration granularity.

:mod:`repro.execution.pin` adds a friendlier Pin-style tool API on top
(procedure-entry / loop-entry / loop-iteration callbacks).

:mod:`repro.execution.trace` lowers one ``(binary, input)`` execution
to a :class:`~repro.execution.trace.CompiledTrace` of flat numpy
arrays — compiled once, memoized through the profile cache, and
replayed in bulk by every profiling consumer.
"""

from repro.execution.engine import ExecutionEngine, RunTotals, run_binary
from repro.execution.events import (
    ExecutionConsumer,
    InstructionCounter,
    IterationProfile,
    MultiConsumer,
    iteration_profile,
)
from repro.execution.pin import PinTool, PinToolAdapter, run_with_tools
from repro.execution.trace import (
    CompiledTrace,
    clear_trace_memo,
    compile_trace,
    compiled_trace,
)

__all__ = [
    "ExecutionEngine",
    "RunTotals",
    "run_binary",
    "ExecutionConsumer",
    "InstructionCounter",
    "IterationProfile",
    "MultiConsumer",
    "iteration_profile",
    "PinTool",
    "PinToolAdapter",
    "run_with_tools",
    "CompiledTrace",
    "clear_trace_memo",
    "compile_trace",
    "compiled_trace",
]
