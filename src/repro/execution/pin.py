"""Pin-style instrumentation tools.

Real Pin lets a tool register callbacks on program constructs. This
module provides the same ergonomics over our execution stream: subclass
:class:`PinTool` and override the callbacks you care about, then drive
a binary with :func:`run_with_tools`. The adapter resolves raw block
executions into the structural callbacks (procedure entries, loop
entries, loop iterations) that the paper's call-and-branch profile
(Section 3.2.1) needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.compilation.binary import Binary, LLoop, LoweredBlock
from repro.execution.engine import ExecutionEngine, RunTotals, run_binary
from repro.execution.events import (
    ExecutionConsumer,
    IterationProfile,
    iteration_profile,
)
from repro.programs.inputs import ProgramInput, REF_INPUT


class PinTool:
    """Base instrumentation tool; override the callbacks you need."""

    def on_program_start(self, binary: Binary) -> None:
        """Called once before execution begins."""

    def on_block_exec(self, block: LoweredBlock, execs: int) -> None:
        """A basic block executed ``execs`` times consecutively."""

    def on_procedure_entry(self, name: str) -> None:
        """A procedure was entered."""

    def on_loop_entry(self, loop_id: int) -> None:
        """A loop was entered (once per entry, regardless of trips)."""

    def on_loop_iterations(self, loop_id: int, iterations: int) -> None:
        """A loop's back-edge branch executed ``iterations`` times."""

    def on_program_end(self) -> None:
        """Called once after execution completes."""


class PinToolAdapter(ExecutionConsumer):
    """Adapts the raw execution stream to :class:`PinTool` callbacks."""

    def __init__(self, binary: Binary, tools: Iterable[PinTool]) -> None:
        self._binary = binary
        self._tools: Tuple[PinTool, ...] = tuple(tools)
        # Precompute structural roles of blocks so dispatch is O(1).
        self._loop_entry_blocks: Dict[int, int] = {}
        self._loop_branch_blocks: Dict[int, int] = {}
        self._profiles: Dict[int, IterationProfile] = {}
        for proc_name in binary.procedures:
            for loop in binary.iter_loops_of(proc_name):
                self._loop_entry_blocks[loop.entry_block] = loop.loop_id
                self._loop_branch_blocks[loop.branch_block] = loop.loop_id

    def _profile(self, loop: LLoop) -> IterationProfile:
        """Per-loop iteration profile, resolved once per adapter."""
        profile = self._profiles.get(loop.loop_id)
        if profile is None:
            profile = iteration_profile(self._binary, loop)
            self._profiles[loop.loop_id] = profile
        return profile

    def start(self) -> None:
        for tool in self._tools:
            tool.on_program_start(self._binary)

    def on_procedure_entry(self, name: str, entry_block: int) -> None:
        for tool in self._tools:
            tool.on_procedure_entry(name)

    def on_block(self, block_id: int, execs: int = 1) -> None:
        block = self._binary.blocks[block_id]
        loop_id = self._loop_entry_blocks.get(block_id)
        if loop_id is not None:
            for tool in self._tools:
                tool.on_loop_entry(loop_id)
        else:
            loop_id = self._loop_branch_blocks.get(block_id)
            if loop_id is not None:
                for tool in self._tools:
                    tool.on_loop_iterations(loop_id, execs)
        for tool in self._tools:
            tool.on_block_exec(block, execs)

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = self._profile(loop)
        for tool in self._tools:
            tool.on_loop_iterations(loop.loop_id, iterations)
        for block_id in profile.body_blocks:
            block = self._binary.blocks[block_id]
            for tool in self._tools:
                tool.on_block_exec(block, iterations)
        branch = self._binary.blocks[profile.branch_block]
        for tool in self._tools:
            tool.on_block_exec(branch, iterations)

    def finish(self) -> None:
        for tool in self._tools:
            tool.on_program_end()


def run_with_tools(
    binary: Binary,
    tools: Iterable[PinTool],
    program_input: ProgramInput = REF_INPUT,
) -> RunTotals:
    """Run a binary under the given instrumentation tools."""
    adapter = PinToolAdapter(binary, tools)
    adapter.start()
    return run_binary(binary, program_input, consumers=(adapter,))
