"""The deterministic execution engine.

:class:`ExecutionEngine` walks a binary's lowered statement tree under a
:class:`~repro.programs.inputs.ProgramInput`, resolving loop trip counts
and streaming primitives to an
:class:`~repro.execution.events.ExecutionConsumer`. Execution order is
exact; innermost straight-line loops are delivered as bulk iteration
spans for speed.

This is the reproduction's stand-in for running the real binary under
Pin: counts (instructions, block executions, loop iterations, procedure
entries) are exact and identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.compilation.binary import (
    Binary,
    LBlock,
    LCall,
    LLoop,
    LStatement,
)
from repro.errors import ExecutionError
from repro.execution.events import (
    ExecutionConsumer,
    InstructionCounter,
    MultiConsumer,
)
from repro.programs.inputs import ProgramInput, REF_INPUT


@dataclass(frozen=True)
class RunTotals:
    """Whole-run totals reported by :func:`run_binary`."""

    instructions: int
    block_executions: int
    iteration_spans: int


def _is_innermost_straight_line(body: Tuple[LStatement, ...]) -> bool:
    return all(isinstance(stmt, LBlock) for stmt in body)


#: Call-depth guard: the compiler never emits recursion (the IR
#: validator rejects cycles), but hand-built binaries could; fail loudly
#: instead of overflowing the Python stack.
MAX_CALL_DEPTH = 256


class ExecutionEngine:
    """Runs one binary under one input, streaming to a consumer."""

    def __init__(
        self, binary: Binary, program_input: ProgramInput = REF_INPUT
    ) -> None:
        self._binary = binary
        self._input = program_input
        self._depth = 0
        # Resolve trip counts and innermost-ness once per loop.
        self._trips: Dict[int, int] = {}
        self._innermost: Dict[int, bool] = {}
        for proc in binary.procedures.values():
            self._prepare(proc.body)

    def _prepare(self, body: Tuple[LStatement, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, LLoop):
                self._trips[stmt.loop_id] = self._input.resolve_trips(
                    stmt.trips, stmt.input_scaled
                )
                self._innermost[stmt.loop_id] = _is_innermost_straight_line(
                    stmt.body
                )
                self._prepare(stmt.body)

    @property
    def binary(self) -> Binary:
        return self._binary

    def resolved_trips(self, loop_id: int) -> int:
        """The trip count a loop runs per entry under this input."""
        try:
            return self._trips[loop_id]
        except KeyError:
            raise ExecutionError(
                f"{self._binary.name}: unknown loop id {loop_id}"
            ) from None

    def run(self, consumer: ExecutionConsumer) -> None:
        """Execute the whole program, streaming to ``consumer``."""
        self._run_procedure(self._binary.entry, consumer)
        consumer.finish()

    def _run_procedure(self, name: str, consumer: ExecutionConsumer) -> None:
        proc = self._binary.procedures.get(name)
        if proc is None:
            raise ExecutionError(
                f"{self._binary.name}: call to unknown procedure {name!r}"
            )
        self._depth += 1
        if self._depth > MAX_CALL_DEPTH:
            raise ExecutionError(
                f"{self._binary.name}: call depth exceeded "
                f"{MAX_CALL_DEPTH} at {name!r} (recursive binary?)"
            )
        consumer.on_procedure_entry(name, proc.entry_block)
        consumer.on_block(proc.entry_block)
        self._run_body(proc.body, consumer)
        self._depth -= 1

    def _run_body(
        self, body: Tuple[LStatement, ...], consumer: ExecutionConsumer
    ) -> None:
        for stmt in body:
            if isinstance(stmt, LBlock):
                consumer.on_block(stmt.block_id)
            elif isinstance(stmt, LCall):
                consumer.on_block(stmt.call_block)
                self._run_procedure(stmt.callee, consumer)
            elif isinstance(stmt, LLoop):
                consumer.on_block(stmt.entry_block)
                trips = self._trips[stmt.loop_id]
                if self._innermost[stmt.loop_id]:
                    consumer.on_iterations(stmt, trips)
                else:
                    for _ in range(trips):
                        self._run_body(stmt.body, consumer)
                        consumer.on_block(stmt.branch_block)
            else:  # pragma: no cover
                raise ExecutionError(
                    f"cannot execute statement type {type(stmt).__name__}"
                )


def run_binary(
    binary: Binary,
    program_input: ProgramInput = REF_INPUT,
    consumers: Iterable[ExecutionConsumer] = (),
) -> RunTotals:
    """Run a binary to completion and return whole-run totals.

    Any extra ``consumers`` observe the same stream as the built-in
    instruction counter.
    """
    counter = InstructionCounter(binary)
    extra = tuple(consumers)
    consumer: ExecutionConsumer
    if extra:
        consumer = MultiConsumer((counter,) + extra)
    else:
        consumer = counter
    ExecutionEngine(binary, program_input).run(consumer)
    return RunTotals(
        instructions=counter.instructions,
        block_executions=counter.block_executions,
        iteration_spans=counter.iteration_spans,
    )
