"""Compile-once execution traces with vectorized replay.

For a fixed ``(binary, input)`` the execution engine's event stream is
bit-identical across profiling passes, yet every consumer used to
re-walk the lowered statement tree and process it one Python event at a
time. A :class:`CompiledTrace` lowers one execution to flat numpy
arrays — a run-length-encoded stream of block runs, iteration-span
records, and procedure-entry markers — produced by a *single* engine
walk and memoized both in-process and through the on-disk
:class:`~repro.runtime.cache.ProfileCache` (kind ``"trace"``, keyed by
the binary/input content fingerprint).

The replay functions in this module consume those arrays in bulk:

* :func:`replay_fli` cuts fixed-length intervals with cumsum /
  searchsorted over the attribution stream, preserving exact mid-block
  splits;
* :func:`replay_vli` locates ``(marker, count)`` boundaries with
  searchsorted over per-event firing positions;
* :func:`replay_interval_counts` turns weight re-measurement into a
  vectorized segment sum between boundary firing positions;
* :func:`replay_call_branch` reduces the whole stream with
  ``np.add.at``.

Every replay is bit-identical to the scalar consumer it replaces (the
scalar paths are retained as oracles, selected with ``use_trace=False``
— see ``tests/test_trace_replay_equivalence.py``); the trace encodes
the exact event order the engine emits, so no ordering semantics are
lost.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compilation.binary import Binary, LBlock, LCall, LLoop, LStatement
from repro.core.markers import ExecutionCoordinate, MarkerSet, MarkerTable
from repro.errors import ExecutionError, MappingError, ProfilingError
from repro.execution.engine import (
    MAX_CALL_DEPTH,
    ExecutionEngine,
    _is_innermost_straight_line,
)
from repro.execution.events import (
    ExecutionConsumer,
    IterationProfile,
    iteration_profile,
)
from repro.observability import metrics
from repro.profiling.intervals import Interval
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.runtime.cache import ProfileCache
from repro.runtime.config import active_cache


def _record_replay(kind: str, trace: "CompiledTrace") -> None:
    """Batch-size instrumentation shared by every replay entry point.

    The event count IS the replay's batch size — each replay consumes
    the whole flat stream in one vectorized pass — so a drifting
    distribution here means traces are being cut differently (or the
    structural expander started falling back to recorded walks).
    """
    metrics.counter("trace.replays").inc()
    metrics.counter(f"trace.replays.{kind}").inc()
    metrics.histogram("trace.replay_batch_events").observe(trace.n_events)

#: Event kinds in the flat stream.
EVENT_BLOCK = 0  #: ``ids`` = block id, ``reps`` = consecutive executions
EVENT_SPAN = 1  #: ``ids`` = loop id, ``reps`` = iterations
EVENT_PROC = 2  #: ``ids`` = procedure index, ``reps`` = entry block id


@dataclass(frozen=True)
class CompiledTrace:
    """One ``(binary, input)`` execution, lowered to flat arrays.

    ``kinds``/``ids``/``reps`` encode the exact engine event stream in
    order (see the ``EVENT_*`` constants). ``event_instr`` is each
    event's total committed instructions and ``event_end`` its
    inclusive prefix sum, so ``event_end[i] - event_instr[i]`` is the
    cumulative instruction position where event ``i`` begins.

    The *attribution stream* (``attr_*``) is the per-``_attribute``-call
    decomposition the scalar BBV collectors see: one run per block
    event, and one run per body block plus one for the branch per
    iteration span, in exact scalar order. ``attr_offsets[i]`` /
    ``attr_offsets[i + 1]`` bound event ``i``'s runs. It is derived
    lazily from the event stream on first access: the BBV replays need
    it, weight re-measurement (which replays one trace per *extra*
    binary) does not, and it is the most expensive part of a compile.
    """

    binary_name: str
    input_name: str
    total_instructions: int
    kinds: np.ndarray  # uint8[E]
    ids: np.ndarray  # int64[E]
    reps: np.ndarray  # int64[E]
    event_instr: np.ndarray  # int64[E]
    event_end: np.ndarray  # int64[E]
    proc_names: Tuple[str, ...]
    span_profiles: Dict[int, IterationProfile]
    instr_of_block: np.ndarray  # int64[max block id + 1]

    @property
    def n_events(self) -> int:
        return int(self.kinds.shape[0])

    @cached_property
    def _attribution(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        kinds, ids, reps = self.kinds, self.ids, self.reps
        n_events = kinds.shape[0]
        is_block = kinds == EVENT_BLOCK
        runs_per_event = is_block.astype(np.int64)

        span_tables = None
        if self.span_profiles:
            max_loop = max(self.span_profiles)
            runs_of = np.zeros(max_loop + 1, dtype=np.int64)
            row_of = np.zeros(max_loop + 1, dtype=np.int64)
            rows = sorted(self.span_profiles)
            width = max(
                len(self.span_profiles[loop_id].body_blocks) + 1
                for loop_id in rows
            )
            table_block = np.zeros((len(rows), width), dtype=np.int64)
            table_instr = np.zeros((len(rows), width), dtype=np.int64)
            for row, loop_id in enumerate(rows):
                profile = self.span_profiles[loop_id]
                sequence = profile.body_blocks + (profile.branch_block,)
                runs_of[loop_id] = len(sequence)
                row_of[loop_id] = row
                table_block[row, : len(sequence)] = sequence
                table_instr[row, : len(sequence)] = self.instr_of_block[
                    np.asarray(sequence, dtype=np.int64)
                ]
            is_span = kinds == EVENT_SPAN
            runs_per_event[is_span] = runs_of[ids[is_span]]
            span_tables = (row_of, table_block, table_instr)

        attr_offsets = np.zeros(n_events + 1, dtype=np.int64)
        np.cumsum(runs_per_event, out=attr_offsets[1:])
        n_runs = int(attr_offsets[-1])
        attr_event = np.repeat(
            np.arange(n_events, dtype=np.int64), runs_per_event
        )

        attr_block = np.empty(n_runs, dtype=np.int64)
        attr_instr = np.empty(n_runs, dtype=np.int64)
        run_is_block = is_block[attr_event]
        block_events = attr_event[run_is_block]
        block_ids = ids[block_events]
        attr_block[run_is_block] = block_ids
        attr_instr[run_is_block] = (
            self.instr_of_block[block_ids] * reps[block_events]
        )
        run_is_span = ~run_is_block
        if span_tables is not None and bool(run_is_span.any()):
            row_of, table_block, table_instr = span_tables
            span_runs = np.nonzero(run_is_span)[0]
            span_events = attr_event[span_runs]
            span_rows = row_of[ids[span_events]]
            span_within = span_runs - attr_offsets[span_events]
            attr_block[span_runs] = table_block[span_rows, span_within]
            attr_instr[span_runs] = (
                table_instr[span_rows, span_within] * reps[span_events]
            )
        attr_end = np.cumsum(attr_instr)
        return attr_offsets, attr_block, attr_instr, attr_end

    @cached_property
    def _block_ranks(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct attributed blocks and each run's dense rank.

        Replays group runs by ``(interval, block)``; dense ranks keep
        those keys small enough for counting sorts. Computed once per
        trace and shared by the FLI and VLI replays.
        """
        attr_block = self.attr_block
        present = np.zeros(self.instr_of_block.shape[0], dtype=bool)
        present[attr_block] = True
        uniq = np.nonzero(present)[0]
        lookup = np.empty(present.shape[0], dtype=np.int64)
        lookup[uniq] = np.arange(uniq.shape[0], dtype=np.int64)
        return uniq, lookup[attr_block]

    @property
    def attr_offsets(self) -> np.ndarray:
        return self._attribution[0]

    @property
    def attr_block(self) -> np.ndarray:
        return self._attribution[1]

    @property
    def attr_instr(self) -> np.ndarray:
        return self._attribution[2]

    @property
    def attr_end(self) -> np.ndarray:
        return self._attribution[3]


class _TraceRecorder(ExecutionConsumer):
    """Records the raw engine stream into flat Python lists."""

    def __init__(self) -> None:
        self.kinds: List[int] = []
        self.ids: List[int] = []
        self.reps: List[int] = []
        self.proc_names: List[str] = []
        self.loops: Dict[int, LLoop] = {}
        self._proc_index: Dict[str, int] = {}

    def on_procedure_entry(self, name: str, entry_block: int) -> None:
        index = self._proc_index.get(name)
        if index is None:
            index = len(self.proc_names)
            self._proc_index[name] = index
            self.proc_names.append(name)
        self.kinds.append(EVENT_PROC)
        self.ids.append(index)
        self.reps.append(entry_block)

    def on_block(self, block_id: int, execs: int = 1) -> None:
        if execs <= 0:
            return
        # Run-length encode consecutive executions of one block. The
        # engine never actually emits adjacent duplicates today, but
        # merged runs replay identically (every consumer's per-exec
        # semantics are linear in ``execs``), so compression is safe.
        if (
            self.kinds
            and self.kinds[-1] == EVENT_BLOCK
            and self.ids[-1] == block_id
        ):
            self.reps[-1] += execs
            return
        self.kinds.append(EVENT_BLOCK)
        self.ids.append(block_id)
        self.reps.append(execs)

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        self.loops.setdefault(loop.loop_id, loop)
        self.kinds.append(EVENT_SPAN)
        self.ids.append(loop.loop_id)
        self.reps.append(iterations)


#: (kinds, ids, reps) arrays plus entry-ordered procedure names and the
#: innermost loops that produced iteration spans.
_Stream = Tuple[np.ndarray, np.ndarray, np.ndarray, List[str], Dict[int, LLoop]]


def _recorded_stream(binary: Binary, program_input: ProgramInput) -> _Stream:
    """The event stream via a real engine walk (oracle / fallback)."""
    recorder = _TraceRecorder()
    ExecutionEngine(binary, program_input).run(recorder)
    return (
        np.asarray(recorder.kinds, dtype=np.uint8),
        np.asarray(recorder.ids, dtype=np.int64),
        np.asarray(recorder.reps, dtype=np.int64),
        recorder.proc_names,
        recorder.loops,
    )


def _expandable(binary: Binary) -> bool:
    """Whether the call graph admits structural template expansion.

    Requires the reachable call graph to be acyclic with entry-chain
    depth within the engine's ``MAX_CALL_DEPTH`` guard; anything else
    (only possible in hand-built binaries) falls back to the recorded
    walk so the engine's own error behavior is preserved exactly.
    """

    depth_of: Dict[str, int] = {}
    in_progress: set = set()

    def depth(name: str) -> int:
        known = depth_of.get(name)
        if known is not None:
            return known
        if name in in_progress:
            raise _Cyclic()
        proc = binary.procedures.get(name)
        if proc is None:
            return 0  # expansion raises the engine's error at the site
        in_progress.add(name)
        deepest = 0

        def body_depth(body: Tuple[LStatement, ...]) -> None:
            nonlocal deepest
            for stmt in body:
                if isinstance(stmt, LCall):
                    deepest = max(deepest, depth(stmt.callee))
                elif isinstance(stmt, LLoop):
                    body_depth(stmt.body)

        body_depth(proc.body)
        in_progress.discard(name)
        depth_of[name] = deepest + 1
        return deepest + 1

    class _Cyclic(Exception):
        pass

    try:
        return depth(binary.entry) <= MAX_CALL_DEPTH
    except _Cyclic:
        return False
    except RecursionError:  # pragma: no cover - extreme static nesting
        return False


def _structural_stream(
    binary: Binary, program_input: ProgramInput
) -> _Stream:
    """The event stream by memoized per-procedure template expansion.

    The engine's walk is fully deterministic given ``(binary, input)``
    — the lowered tree has no conditionals and trip counts resolve
    statically — so each procedure's event stream is a fixed template:
    its blocks in statement order with callee templates spliced at call
    sites and non-innermost loop bodies tiled ``trips`` times. Every
    distinct procedure is expanded once; the full stream is the entry
    procedure's template. Matches :func:`_recorded_stream` exactly
    (procedure indices are assigned at first encounter in execution
    order, which *is* first dynamic entry order).
    """
    trips_of: Dict[int, int] = {}
    innermost_of: Dict[int, bool] = {}

    def prepare(body: Tuple[LStatement, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, LLoop):
                trips_of[stmt.loop_id] = program_input.resolve_trips(
                    stmt.trips, stmt.input_scaled
                )
                innermost_of[stmt.loop_id] = _is_innermost_straight_line(
                    stmt.body
                )
                prepare(stmt.body)

    for proc in binary.procedures.values():
        prepare(proc.body)

    proc_names: List[str] = []
    proc_index: Dict[str, int] = {}
    loops: Dict[int, LLoop] = {}
    templates: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    _EMPTY = (
        np.empty(0, dtype=np.uint8),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )

    def concat(
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not parts:
            return _EMPTY
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
        )

    def flush(
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        pend_kinds: List[int],
        pend_ids: List[int],
        pend_reps: List[int],
    ) -> None:
        if pend_kinds:
            parts.append(
                (
                    np.array(pend_kinds, dtype=np.uint8),
                    np.array(pend_ids, dtype=np.int64),
                    np.array(pend_reps, dtype=np.int64),
                )
            )
            pend_kinds.clear()
            pend_ids.clear()
            pend_reps.clear()

    def expand_body(
        body: Tuple[LStatement, ...],
        depth: int,
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        pend_kinds: List[int],
        pend_ids: List[int],
        pend_reps: List[int],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, LBlock):
                pend_kinds.append(EVENT_BLOCK)
                pend_ids.append(stmt.block_id)
                pend_reps.append(1)
            elif isinstance(stmt, LCall):
                pend_kinds.append(EVENT_BLOCK)
                pend_ids.append(stmt.call_block)
                pend_reps.append(1)
                flush(parts, pend_kinds, pend_ids, pend_reps)
                parts.append(expand_proc(stmt.callee, depth + 1))
            elif isinstance(stmt, LLoop):
                pend_kinds.append(EVENT_BLOCK)
                pend_ids.append(stmt.entry_block)
                pend_reps.append(1)
                trips = trips_of[stmt.loop_id]
                if innermost_of[stmt.loop_id]:
                    loops.setdefault(stmt.loop_id, stmt)
                    pend_kinds.append(EVENT_SPAN)
                    pend_ids.append(stmt.loop_id)
                    pend_reps.append(trips)
                else:
                    flush(parts, pend_kinds, pend_ids, pend_reps)
                    sub_parts: List[
                        Tuple[np.ndarray, np.ndarray, np.ndarray]
                    ] = []
                    sub_kinds: List[int] = []
                    sub_ids: List[int] = []
                    sub_reps: List[int] = []
                    expand_body(
                        stmt.body, depth, sub_parts,
                        sub_kinds, sub_ids, sub_reps,
                    )
                    sub_kinds.append(EVENT_BLOCK)
                    sub_ids.append(stmt.branch_block)
                    sub_reps.append(1)
                    flush(sub_parts, sub_kinds, sub_ids, sub_reps)
                    segment = concat(sub_parts)
                    parts.append(
                        (
                            np.tile(segment[0], trips),
                            np.tile(segment[1], trips),
                            np.tile(segment[2], trips),
                        )
                    )
            else:  # pragma: no cover - mirrors the engine's guard
                raise ExecutionError(
                    f"cannot execute statement type {type(stmt).__name__}"
                )

    def expand_proc(
        name: str, depth: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        template = templates.get(name)
        if template is not None:
            return template
        proc = binary.procedures.get(name)
        if proc is None:
            raise ExecutionError(
                f"{binary.name}: call to unknown procedure {name!r}"
            )
        if depth > MAX_CALL_DEPTH:  # pragma: no cover - _expandable gates
            raise ExecutionError(
                f"{binary.name}: call depth exceeded "
                f"{MAX_CALL_DEPTH} at {name!r} (recursive binary?)"
            )
        index = proc_index.get(name)
        if index is None:
            proc_index[name] = len(proc_names)
            index = proc_index[name]
            proc_names.append(name)
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        pend_kinds = [EVENT_PROC, EVENT_BLOCK]
        pend_ids = [index, proc.entry_block]
        pend_reps = [proc.entry_block, 1]
        expand_body(
            proc.body, depth, parts, pend_kinds, pend_ids, pend_reps
        )
        flush(parts, pend_kinds, pend_ids, pend_reps)
        template = concat(parts)
        templates[name] = template
        return template

    kinds, ids, reps = expand_proc(binary.entry, 1)

    # Run-length merge of adjacent same-block events, exactly as the
    # recorder does (template splicing can in principle create
    # adjacency the engine's one-event-at-a-time stream cannot).
    if kinds.shape[0] > 1:
        dup = (
            (kinds[1:] == EVENT_BLOCK)
            & (kinds[:-1] == EVENT_BLOCK)
            & (ids[1:] == ids[:-1])
        )
        if bool(dup.any()):
            keep = np.empty(kinds.shape[0], dtype=bool)
            keep[0] = True
            np.logical_not(dup, out=keep[1:])
            segment = np.cumsum(keep) - 1
            merged = np.zeros(int(segment[-1]) + 1, dtype=np.int64)
            np.add.at(merged, segment, reps)
            kinds, ids, reps = kinds[keep], ids[keep], merged
    return kinds, ids, reps, proc_names, loops


#: Per-binary statics (pure functions of the binary object): the block
#: instruction table and the expandability verdict. Keyed by object
#: identity (verified), like ``iteration_profile``'s own memo; both the
#: structural and recorded compile paths benefit equally.
_STATICS_CAPACITY = 32
_statics_memo: "OrderedDict[int, Tuple[Binary, np.ndarray, bool]]"
_statics_memo = OrderedDict()


def _statics_for(binary: Binary) -> Tuple[np.ndarray, bool]:
    memoized = _statics_memo.get(id(binary))
    if memoized is not None and memoized[0] is binary:
        _statics_memo.move_to_end(id(binary))
        return memoized[1], memoized[2]
    n_blocks = len(binary.blocks)
    instr_of_block = np.zeros(
        (max(binary.blocks) + 1) if binary.blocks else 1, dtype=np.int64
    )
    if n_blocks:
        block_ids = np.fromiter(
            binary.blocks.keys(), dtype=np.int64, count=n_blocks
        )
        instr_of_block[block_ids] = np.fromiter(
            (block.instructions for block in binary.blocks.values()),
            dtype=np.int64,
            count=n_blocks,
        )
    expandable = _expandable(binary)
    _statics_memo[id(binary)] = (binary, instr_of_block, expandable)
    if len(_statics_memo) > _STATICS_CAPACITY:
        _statics_memo.popitem(last=False)
    return instr_of_block, expandable


def compile_trace(
    binary: Binary, program_input: ProgramInput = REF_INPUT
) -> CompiledTrace:
    """Compile one execution to a trace, without running it.

    The event stream comes from structural template expansion
    (:func:`_structural_stream`) whenever the call graph allows it —
    an engine-walk-free compile — and from a recorded engine walk
    otherwise. Both produce the identical stream.
    """
    instr_of_block, expandable = _statics_for(binary)
    if expandable:
        stream = _structural_stream(binary, program_input)
    else:
        stream = _recorded_stream(binary, program_input)
    kinds, ids, reps, stream_proc_names, stream_loops = stream
    n_events = kinds.shape[0]
    if n_events == 0:  # pragma: no cover - a binary always has an entry
        ids = ids.reshape(0)
        reps = reps.reshape(0)

    span_profiles = {
        loop_id: iteration_profile(binary, loop)
        for loop_id, loop in stream_loops.items()
    }

    is_block = kinds == EVENT_BLOCK
    event_instr = np.zeros(n_events, dtype=np.int64)
    event_instr[is_block] = instr_of_block[ids[is_block]] * reps[is_block]

    if span_profiles:
        per_iter_of = np.zeros(max(span_profiles) + 1, dtype=np.int64)
        for loop_id, profile in span_profiles.items():
            per_iter_of[loop_id] = profile.instructions_per_iteration
        is_span = kinds == EVENT_SPAN
        event_instr[is_span] = per_iter_of[ids[is_span]] * reps[is_span]

    event_end = np.cumsum(event_instr)
    total = int(event_end[-1]) if n_events else 0

    return CompiledTrace(
        binary_name=binary.name,
        input_name=program_input.name,
        total_instructions=total,
        kinds=kinds,
        ids=ids,
        reps=reps,
        event_instr=event_instr,
        event_end=event_end,
        proc_names=tuple(stream_proc_names),
        span_profiles=span_profiles,
        instr_of_block=instr_of_block,
    )


#: In-process memo: the same binary object profiled under the same
#: input by several consumers (FLI, VLI, weights, call/branch) compiles
#: its trace exactly once per process. Bounded so sweeps over many
#: binaries cannot accumulate unbounded array storage.
_MEMO_CAPACITY = 16
_memo: "OrderedDict[Tuple[int, ProgramInput], Tuple[Binary, CompiledTrace]]"
_memo = OrderedDict()


def clear_trace_memo() -> None:
    """Drop the in-process trace memos (tests and benchmarks)."""
    _memo.clear()
    _firings_memo.clear()
    _statics_memo.clear()


def compiled_trace(
    binary: Binary,
    program_input: ProgramInput = REF_INPUT,
    *,
    cache: Optional[ProfileCache] = None,
) -> CompiledTrace:
    """The trace for ``(binary, input)``, memoized at two levels.

    In-process, the trace is keyed by binary object identity (verified,
    like :func:`~repro.execution.events.iteration_profile`); across
    processes it goes through the profile cache (explicit or the
    process-wide one) under kind ``"trace"`` with the binary/input
    content fingerprint as key.
    """
    key = (id(binary), program_input)
    memoized = _memo.get(key)
    if memoized is not None and memoized[0] is binary:
        _memo.move_to_end(key)
        return memoized[1]
    cache = cache if cache is not None else active_cache()
    if cache is None:
        trace = compile_trace(binary, program_input)
    else:
        trace = cache.get_or_compute(
            "trace",
            (binary, program_input),
            lambda: compile_trace(binary, program_input),
        )
    _memo[key] = (binary, trace)
    if len(_memo) > _MEMO_CAPACITY:
        _memo.popitem(last=False)
    return trace


def _group_ranked(
    key: np.ndarray, amounts: np.ndarray, n_intervals: int, n_uniq: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum ``amounts`` per ``interval * n_uniq + rank`` key.

    Returns ``(ranks, sums, intervals)`` ordered by interval and, within
    each interval, by each key's first occurrence — the scalar
    collectors' dict insertion order. Amounts accumulate in stream
    order, the exact chronological order the scalar ``+=`` loop uses.

    When the key space is comparably sized to the run count the
    grouping is a counting pass (bincount / scatter) with no sort over
    the runs; a stable argsort + ``reduceat`` handles the sparse case
    (many intervals over few runs, e.g. tiny interval sizes).
    """
    n_runs = key.shape[0]
    if n_runs == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64), empty
    bins = n_intervals * n_uniq
    if bins <= 4 * n_runs + 4096:
        sums_all = np.bincount(
            key, weights=amounts.astype(np.float64), minlength=bins
        )
        touched = np.zeros(bins, dtype=bool)
        touched[key] = True
        first_index = np.empty(bins, dtype=np.int64)
        # Reversed scatter: the last write wins, leaving each key's
        # FIRST occurrence index.
        first_index[key[::-1]] = np.arange(
            n_runs - 1, -1, -1, dtype=np.int64
        )
        pairs = np.nonzero(touched)[0]
        pair_interval = pairs // n_uniq
        final = np.lexsort((first_index[pairs], pair_interval))
        ordered = pairs[final]
        return ordered % n_uniq, sums_all[ordered], pair_interval[final]
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    new_group = np.empty(n_runs, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=new_group[1:])
    starts = np.nonzero(new_group)[0]
    uniq = sorted_key[starts]
    sums = np.add.reduceat(amounts[order].astype(np.float64), starts)
    first_index = order[starts]
    pair_interval = uniq // n_uniq
    final = np.lexsort((first_index, pair_interval))
    return (uniq % n_uniq)[final], sums[final], pair_interval[final]


def replay_fli(
    trace: CompiledTrace, interval_size: int
) -> List[Interval]:
    """Cut the trace into fixed-length-interval BBVs.

    Bit-identical to
    :class:`~repro.profiling.bbv.FixedLengthBBVCollector` over the same
    execution: boundaries fall at exact instruction counts, splitting
    attribution runs mid-block just as the scalar ``_attribute`` loop
    does.
    """
    if interval_size <= 0:
        raise ProfilingError(
            f"interval_size must be positive, got {interval_size}"
        )
    _record_replay("fli", trace)
    total = trace.total_instructions
    if total == 0:
        return []
    size = interval_size
    ends = trace.attr_end
    starts = ends - trace.attr_instr
    first = starts // size
    last = (ends - 1) // size
    # Zero-instruction runs never touch the scalar collector's bbv
    # (its attribute loop is ``while instructions > 0``), so they must
    # contribute no pieces even when they sit mid-interval (the
    # ``where`` also corrects their piece count when ``last`` underruns
    # ``first`` at an exact boundary).
    counts = np.where(
        trace.attr_instr > 0, last - first + 1, 0
    )  # pieces per run
    offsets = np.cumsum(counts) - counts
    n_pieces = int(counts.sum())
    piece_run = np.repeat(
        np.arange(counts.shape[0], dtype=np.int64), counts
    )
    piece_index = np.arange(n_pieces, dtype=np.int64) - offsets[piece_run]
    piece_interval = first[piece_run] + piece_index
    base = piece_interval * size
    lo = np.maximum(starts[piece_run], base)
    hi = np.minimum(ends[piece_run], base + size)
    piece_len = hi - lo

    n_intervals = -(-total // size)

    # Group all pieces by (interval, block) in ONE pass — per-interval
    # numpy calls would pay fixed overhead n_intervals times.
    uniq_blocks, rank_of_run = trace._block_ranks
    n_uniq = uniq_blocks.shape[0]
    key = piece_interval * n_uniq + rank_of_run[piece_run]
    pair_ranks, pair_sums, pair_interval = _group_ranked(
        key, piece_len, n_intervals, n_uniq
    )
    bounds = np.searchsorted(
        pair_interval, np.arange(n_intervals + 1, dtype=np.int64)
    ).tolist()
    pair_blocks = uniq_blocks[pair_ranks].tolist()
    pair_sums = pair_sums.tolist()

    intervals: List[Interval] = []
    append = intervals.append
    last_index = n_intervals - 1
    lo_i = bounds[0]
    for index in range(n_intervals):
        hi_i = bounds[index + 1]
        append(
            Interval(
                index,
                size if index != last_index else total - last_index * size,
                dict(zip(pair_blocks[lo_i:hi_i], pair_sums[lo_i:hi_i])),
            )
        )
        lo_i = hi_i
    return intervals


@dataclass(frozen=True)
class _Firings:
    """Marker firings of a trace, one row per *firing event*.

    A firing event is a block run of a marker anchor block (``n`` =
    execs, ``step`` = block instructions) or an iteration span whose
    back-edge branch is an anchor (``n`` = iterations, ``step`` =
    instructions per iteration). Firing ``f`` (1-based) of event row
    ``j`` completes at instruction position ``base[j] + f * step[j]``
    and leaves its marker at cumulative count ``count_before[j] + f``.
    ``last`` (= ``base + n * step``) is strictly increasing, so a
    searchsorted over it locates the event containing the first firing
    at or past any position threshold.
    """

    event: np.ndarray  # int64[F] index into the trace's event arrays
    marker: np.ndarray  # int64[F]
    n: np.ndarray  # int64[F]
    step: np.ndarray  # int64[F]
    base: np.ndarray  # int64[F]
    last: np.ndarray  # int64[F]
    count_before: np.ndarray  # int64[F]

    @cached_property
    def last_list(self) -> List[int]:
        """``last`` as a Python list, for bisect in sequential loops."""
        return self.last.tolist()

    @cached_property
    def columns(
        self,
    ) -> Tuple[List[int], List[int], List[int], List[int], List[int]]:
        """(event, marker, step, base, count_before) as Python lists.

        The VLI boundary walk reads a handful of scalars per boundary;
        list indexing beats numpy scalar extraction there, and the
        conversion is done once per (memoized) firing table.
        """
        return (
            self.event.tolist(),
            self.marker.tolist(),
            self.step.tolist(),
            self.base.tolist(),
            self.count_before.tolist(),
        )


def _firings(
    trace: CompiledTrace, block_to_marker: Dict[int, int]
) -> _Firings:
    """Locate every marker firing event in the trace."""
    size = trace.instr_of_block.shape[0]
    if block_to_marker:
        size = max(size, max(block_to_marker) + 1)
    marker_of_block = np.full(size, -1, dtype=np.int64)
    if block_to_marker:
        anchor_blocks = np.fromiter(
            block_to_marker.keys(), dtype=np.int64, count=len(block_to_marker)
        )
        marker_of_block[anchor_blocks] = np.fromiter(
            block_to_marker.values(),
            dtype=np.int64,
            count=len(block_to_marker),
        )
    branch_marker_of_loop: Dict[int, int] = {}
    for loop_id, profile in trace.span_profiles.items():
        marker_id = block_to_marker.get(profile.branch_block)
        if marker_id is not None:
            branch_marker_of_loop[loop_id] = marker_id

    kinds, ids, reps = trace.kinds, trace.ids, trace.reps
    event_marker = np.full(kinds.shape[0], -1, dtype=np.int64)
    is_block = kinds == EVENT_BLOCK
    event_marker[is_block] = marker_of_block[ids[is_block]]
    if branch_marker_of_loop:
        is_span = kinds == EVENT_SPAN
        span_marker = np.full(
            max(trace.span_profiles) + 1, -1, dtype=np.int64
        )
        for loop_id, marker_id in branch_marker_of_loop.items():
            span_marker[loop_id] = marker_id
        event_marker[is_span] = span_marker[ids[is_span]]

    fires = (event_marker >= 0) & (reps > 0)
    event = np.nonzero(fires)[0]
    marker = event_marker[event]
    n = reps[event]
    step = trace.event_instr[event] // np.maximum(n, 1)
    base = trace.event_end[event] - trace.event_instr[event]
    last = trace.event_end[event]

    # Per-marker cumulative firing count before each event: a stable
    # sort groups rows by marker, a grouped cumsum counts within.
    count_before = np.zeros(event.shape[0], dtype=np.int64)
    if event.shape[0]:
        order = np.argsort(marker, kind="stable")
        sorted_marker = marker[order]
        sorted_n = n[order]
        exclusive = np.cumsum(sorted_n) - sorted_n
        new_group = np.empty(sorted_marker.shape[0], dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_marker[1:], sorted_marker[:-1], out=new_group[1:])
        group_id = np.cumsum(new_group) - 1
        group_base = exclusive[np.nonzero(new_group)[0]]
        count_before[order] = exclusive - group_base[group_id]
    return _Firings(
        event=event,
        marker=marker,
        n=n,
        step=step,
        base=base,
        last=last,
        count_before=count_before,
    )


#: Firing tables are consumed several times per trace (VLI cutting plus
#: one weight re-measurement per phase selection); memoize per
#: (trace, marker table) object pair, identity-verified like the trace
#: memo itself.
_FIRINGS_CAPACITY = 32
_firings_memo: "OrderedDict[Tuple[int, int], Tuple[CompiledTrace, MarkerTable, _Firings]]"
_firings_memo = OrderedDict()


def _firings_for(trace: CompiledTrace, table: MarkerTable) -> _Firings:
    key = (id(trace), id(table))
    memoized = _firings_memo.get(key)
    if (
        memoized is not None
        and memoized[0] is trace
        and memoized[1] is table
    ):
        _firings_memo.move_to_end(key)
        return memoized[2]
    firings = _firings(trace, table.block_to_marker())
    _firings_memo[key] = (trace, table, firings)
    if len(_firings_memo) > _FIRINGS_CAPACITY:
        _firings_memo.popitem(last=False)
    return firings


def replay_vli(
    trace: CompiledTrace,
    binary: Binary,
    table: MarkerTable,
    target_size: int,
) -> List[Interval]:
    """Cut the trace into marker-bounded variable-length intervals.

    Bit-identical to :class:`~repro.core.vli.VLIBuilder`: each interval
    ends at the first marker firing at or past the target size (the
    firing's instructions included), and a run that ends exactly on an
    emitted boundary re-expresses the final interval as running to
    program exit.
    """
    if target_size <= 0:
        raise ProfilingError(
            f"target_size must be positive, got {target_size}"
        )
    if table.binary_name != binary.name:
        raise ProfilingError(
            f"marker table is for {table.binary_name!r}, "
            f"not {binary.name!r}"
        )
    _record_replay("vli", trace)
    firings = _firings_for(trace, table)
    total = trace.total_instructions

    # Boundary discovery: one bisect per interval over the strictly-
    # increasing last-firing positions (sequential — each threshold
    # depends on the previous boundary — so Python bisect beats a
    # per-iteration numpy call).
    boundary_pos: List[int] = []
    boundary_event: List[int] = []
    boundary_offset: List[int] = []  # firings consumed in the event
    boundary_coord: List[ExecutionCoordinate] = []
    last_list = firings.last_list
    event_col, marker_col, step_col, base_col, count_col = firings.columns
    n_rows = len(last_list)
    start_pos = 0
    while True:
        threshold = start_pos + target_size
        row = bisect_left(last_list, threshold)
        if row >= n_rows:
            break
        step = step_col[row]
        base = base_col[row]
        offset = max(1, -(-(threshold - base) // step))
        position = base + offset * step
        boundary_pos.append(position)
        boundary_event.append(event_col[row])
        boundary_offset.append(offset)
        boundary_coord.append((marker_col[row], count_col[row] + offset))
        start_pos = position

    # Each interval's attribution is one CONTIGUOUS run range
    # ``[attr_offsets[first event], attr_offsets[boundary event + 1])``
    # — a boundary event's own runs are included whole, only their
    # *amounts* are rescaled to the firings the interval consumed
    # (``attr_instr / reps`` recovers the exact per-firing amount;
    # every run's total is per-firing times reps). The walk records
    # four segment descriptors per interval; the run gather, the
    # boundary-event rescales, and the (interval, block) grouping all
    # happen vectorized afterwards.
    attr_offsets = trace.attr_offsets
    attr_instr = trace.attr_instr
    reps = trace.reps
    n_events = trace.n_events

    seg_event: List[int] = []  # first event of the segment
    seg_consumed: List[int] = []  # its firings already consumed
    seg_end: List[int] = []  # boundary event (n_events - 1 at exit)
    seg_fired: List[int] = []  # firings closing the interval (-1: exit)
    seg_instr: List[int] = []
    coords: List[Optional[ExecutionCoordinate]] = []
    prev_pos = 0
    prev_event = 0
    prev_offset = 0  # firings of ``prev_event`` already consumed
    for position, event_index, offset, coord in zip(
        boundary_pos, boundary_event, boundary_offset, boundary_coord
    ):
        seg_event.append(prev_event)
        seg_consumed.append(prev_offset)
        seg_end.append(event_index)
        seg_fired.append(offset)
        seg_instr.append(position - prev_pos)
        coords.append(coord)
        prev_pos = position
        if offset == int(reps[event_index]):
            prev_event = event_index + 1
            prev_offset = 0
        else:
            prev_event = event_index
            prev_offset = offset

    if total > prev_pos:
        # Final interval: runs to program exit, no closing rescale.
        # The ``n_events - 1`` sentinel makes the shared
        # ``attr_offsets[seg_end + 1]`` gather land on the total run
        # count.
        seg_event.append(prev_event)
        seg_consumed.append(prev_offset)
        seg_end.append(n_events - 1)
        seg_fired.append(-1)
        seg_instr.append(total - prev_pos)
        coords.append(None)
    elif coords:
        # The run ended exactly at a marker firing that closed an
        # interval; re-express the final interval as running to
        # program exit (the scalar builder's finish() semantics).
        coords[-1] = None

    n_intervals = len(coords)
    if n_intervals == 0:
        return []

    uniq_blocks, rank_of_run = trace._block_ranks
    n_uniq = uniq_blocks.shape[0]

    pe = np.asarray(seg_event, dtype=np.int64)
    po = np.asarray(seg_consumed, dtype=np.int64)
    ee = np.asarray(seg_end, dtype=np.int64)
    eo = np.asarray(seg_fired, dtype=np.int64)
    seg_lo = attr_offsets[pe]
    lengths = attr_offsets[ee + 1] - seg_lo
    excl = np.cumsum(lengths) - lengths
    run_index = np.arange(
        int(lengths.sum()), dtype=np.int64
    ) + np.repeat(seg_lo - excl, lengths)
    all_ranks = rank_of_run[run_index]
    all_amounts = attr_instr[run_index]  # fancy gather: a fresh copy

    # Rescale the boundary events' runs. ``same`` marks an interval
    # whose two boundaries split one long event (factor: the firing
    # delta); other heads rescale a partially-consumed first event to
    # its remaining firings, tails rescale the closing event to the
    # firings it contributed (an exactly-consumed event rescales to
    # the full amount — a numeric no-op kept for uniformity).
    same = (po > 0) & (pe == ee) & (eo >= 0)

    def rescale(sel, events, factors, at_end):
        if not sel.any():
            return
        ev = events[sel]
        lo = attr_offsets[ev]
        cnt = attr_offsets[ev + 1] - lo
        base = excl[sel]
        if at_end:
            base = base + lengths[sel] - cnt
        pos = np.arange(int(cnt.sum()), dtype=np.int64) + np.repeat(
            base - (np.cumsum(cnt) - cnt), cnt
        )
        rep_ev = np.repeat(reps[ev], cnt)
        all_amounts[pos] = (all_amounts[pos] // rep_ev) * np.repeat(
            factors[sel], cnt
        )

    rescale(po > 0, pe, np.where(same, eo - po, reps[pe] - po), False)
    rescale((eo > 0) & ~same, ee, eo, True)

    # Group every interval's attribution runs by (interval, block) in
    # ONE counting pass — see replay_fli. Zero-instruction runs stay
    # as keys with value 0.0, exactly as the scalar builder's
    # ``_attribute`` inserts them.
    interval_id = np.repeat(
        np.arange(n_intervals, dtype=np.int64), lengths
    )
    key = interval_id * n_uniq + all_ranks
    pair_ranks, pair_sums, pair_interval = _group_ranked(
        key, all_amounts, n_intervals, n_uniq
    )
    bounds = np.searchsorted(
        pair_interval, np.arange(n_intervals + 1, dtype=np.int64)
    ).tolist()
    pair_blocks = uniq_blocks[pair_ranks].tolist()
    pair_sums = pair_sums.tolist()

    intervals: List[Interval] = []
    append = intervals.append
    start: Optional[ExecutionCoordinate] = None
    lo_i = bounds[0]
    for index, end_coord in enumerate(coords):
        hi_i = bounds[index + 1]
        append(
            Interval(
                index,
                seg_instr[index],
                dict(zip(pair_blocks[lo_i:hi_i], pair_sums[lo_i:hi_i])),
                start,
                end_coord,
            )
        )
        start = end_coord
        lo_i = hi_i
    return intervals


def replay_interval_counts(
    trace: CompiledTrace,
    binary: Binary,
    marker_set: MarkerSet,
    boundaries: Sequence[ExecutionCoordinate],
) -> List[int]:
    """Instructions between mapped boundaries, as a segment sum.

    Bit-identical to
    :class:`~repro.core.weights.IntervalInstructionCounter`: each
    boundary must fire, in order, strictly after the previous one; the
    counts are differences of the boundary firing positions (the firing
    block's instructions belong to the interval it closes).
    """
    _record_replay("interval_counts", trace)
    firings = _firings_for(trace, marker_set.table_for(binary.name))
    boundary_list = list(boundaries)
    if not boundary_list:
        return [trace.total_instructions]

    # Per-marker view: rows sorted by marker (stable, so time-ordered
    # within a marker) with each marker's inclusive firing-count cumsum.
    order = np.argsort(firings.marker, kind="stable")
    sorted_marker = firings.marker[order]
    count_after = firings.count_before[order] + firings.n[order]

    b_marker = np.asarray(
        [int(marker_id) for marker_id, _ in boundary_list], dtype=np.int64
    )
    b_count = np.asarray(
        [int(count) for _, count in boundary_list], dtype=np.int64
    )
    # Locate each boundary's firing row: within its marker's sorted
    # rows, the first whose inclusive cumulative count reaches the
    # requested count. One searchsorted over a compound
    # (marker, count) key resolves every boundary at once; -1 marks
    # counts the marker never reaches.
    n_rows = order.shape[0]
    if n_rows == 0:
        positions = np.full(b_marker.shape[0], -1, dtype=np.int64)
    else:
        span = int(max(count_after.max(), b_count.max())) + 1
        keys = sorted_marker * span + count_after
        slots = np.searchsorted(
            keys, b_marker * span + b_count, side="left"
        )
        clipped = np.minimum(slots, n_rows - 1)
        found = (slots < n_rows) & (sorted_marker[clipped] == b_marker)
        rows = order[clipped]
        offsets = b_count - firings.count_before[rows]
        pos = firings.base[rows] + offsets * firings.step[rows]
        positions = np.where(found, pos, -1)

    # The scalar counter requires boundaries to fire in order, each
    # strictly after the previous; fail at the first index violating
    # that, with the counter's exact error.
    previous = np.empty_like(positions)
    previous[0] = 0
    previous[1:] = positions[:-1]
    bad = np.nonzero((positions < 0) | (positions <= previous))[0]
    if bad.shape[0]:
        index = int(bad[0])
        marker_id, count = boundary_list[index]
        raise MappingError(
            f"{binary.name}: execution ended with boundary "
            f"{(marker_id, count)} (index {index}) never reached - "
            f"the mapped coordinates do not exist in this binary"
        )
    counts = np.empty(positions.shape[0] + 1, dtype=np.int64)
    counts[0] = positions[0]
    counts[1:-1] = positions[1:] - positions[:-1]
    counts[-1] = trace.total_instructions - positions[-1]
    return counts.tolist()


def replay_call_branch(trace: CompiledTrace, binary: Binary):
    """The whole-run call-and-branch profile, by bulk reduction.

    Bit-identical to
    :class:`~repro.profiling.callbranch.CallBranchProfiler` driven
    through the Pin adapter: procedure entries come straight from the
    trace's entry markers, loop entry/iteration counts reduce with
    ``np.add.at`` over block executions and span records.
    """
    from repro.profiling.callbranch import CallBranchProfile, LoopProfile

    _record_replay("call_branch", trace)
    kinds, ids, reps = trace.kinds, trace.ids, trace.reps

    proc_entries: Dict[str, int] = {name: 0 for name in binary.symbols}
    is_proc = kinds == EVENT_PROC
    proc_counts = np.zeros(len(trace.proc_names), dtype=np.int64)
    np.add.at(proc_counts, ids[is_proc], 1)
    # ``proc_names`` is already in first-entry order, which is the
    # insertion order the scalar profiler produces for non-symbol
    # procedures.
    for index, name in enumerate(trace.proc_names):
        proc_entries[name] = proc_entries.get(name, 0) + int(
            proc_counts[index]
        )

    block_execs = np.zeros(trace.instr_of_block.shape[0], dtype=np.int64)
    is_block = kinds == EVENT_BLOCK
    np.add.at(block_execs, ids[is_block], reps[is_block])
    span_iters = np.zeros(
        (max(trace.span_profiles) + 1) if trace.span_profiles else 1,
        dtype=np.int64,
    )
    is_span = kinds == EVENT_SPAN
    np.add.at(span_iters, ids[is_span], reps[is_span])

    loop_blocks: Dict[int, Tuple[int, int]] = {}
    for proc_name in binary.procedures:
        for loop in binary.iter_loops_of(proc_name):
            loop_blocks[loop.loop_id] = (loop.entry_block, loop.branch_block)

    loops: Dict[int, LoopProfile] = {}
    for loop_id, meta in binary.loops.items():
        entry_block, branch_block = loop_blocks.get(loop_id, (-1, -1))
        entries = (
            int(block_execs[entry_block])
            if 0 <= entry_block < block_execs.shape[0]
            else 0
        )
        iterations = (
            int(block_execs[branch_block])
            if 0 <= branch_block < block_execs.shape[0]
            else 0
        )
        if loop_id < span_iters.shape[0]:
            iterations += int(span_iters[loop_id])
        loops[loop_id] = LoopProfile(
            loop_id=loop_id,
            location=meta.location,
            source_name=meta.source_name,
            entries=entries,
            iterations=iterations,
        )
    return CallBranchProfile(
        binary_name=binary.name,
        procedure_entries=proc_entries,
        loops=loops,
        total_instructions=trace.total_instructions,
    )
