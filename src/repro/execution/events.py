"""Execution-stream consumer interface and helpers.

The engine streams two primitives, in exact program order:

* ``on_block(block_id, execs)`` — ``execs`` consecutive executions of a
  basic block (``execs > 1`` never occurs for blocks with interleaved
  ordering constraints; the engine only batches where order is
  preserved);
* ``on_iterations(loop, iterations)`` — a bulk span of an innermost
  straight-line loop: semantically ``iterations`` repetitions of (body
  blocks in order, then the loop-branch block).

Consumers that only need counts process spans in O(1); consumers that
need boundary placement split spans at iteration granularity using
:func:`iteration_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.compilation.binary import Binary, LBlock, LLoop


class ExecutionConsumer:
    """Base class for execution-stream consumers; methods are no-ops."""

    def on_procedure_entry(self, name: str, entry_block: int) -> None:
        """Called when a procedure is entered, before its entry block."""

    def on_block(self, block_id: int, execs: int = 1) -> None:
        """``execs`` consecutive executions of ``block_id``."""

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        """Bulk iteration span of an innermost straight-line loop."""

    def finish(self) -> None:
        """Called once when execution completes."""


class MultiConsumer(ExecutionConsumer):
    """Broadcasts the stream to several consumers, in order."""

    def __init__(self, consumers: Iterable[ExecutionConsumer]) -> None:
        self._consumers: Tuple[ExecutionConsumer, ...] = tuple(consumers)

    def on_procedure_entry(self, name: str, entry_block: int) -> None:
        for consumer in self._consumers:
            consumer.on_procedure_entry(name, entry_block)

    def on_block(self, block_id: int, execs: int = 1) -> None:
        for consumer in self._consumers:
            consumer.on_block(block_id, execs)

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        for consumer in self._consumers:
            consumer.on_iterations(loop, iterations)

    def finish(self) -> None:
        for consumer in self._consumers:
            consumer.finish()


@dataclass(frozen=True)
class IterationProfile:
    """Per-iteration shape of an innermost straight-line loop."""

    loop_id: int
    body_blocks: Tuple[int, ...]
    body_instructions: int
    branch_block: int
    branch_instructions: int

    @property
    def instructions_per_iteration(self) -> int:
        return self.body_instructions + self.branch_instructions

    def block_counts(self, iterations: int) -> List[Tuple[int, int]]:
        """``(block_id, execs)`` pairs for ``iterations`` iterations."""
        counts = [(block_id, iterations) for block_id in self.body_blocks]
        counts.append((self.branch_block, iterations))
        return counts


class _ProfileCache:
    """Per-binary cache of :class:`IterationProfile` objects."""

    def __init__(self, binary: Binary) -> None:
        self._binary = binary
        self._cache: Dict[int, IterationProfile] = {}

    def get(self, loop: LLoop) -> IterationProfile:
        profile = self._cache.get(loop.loop_id)
        if profile is None:
            body_blocks = tuple(
                stmt.block_id for stmt in loop.body if isinstance(stmt, LBlock)
            )
            body_instr = sum(
                self._binary.block(b).instructions for b in body_blocks
            )
            branch_instr = self._binary.block(loop.branch_block).instructions
            profile = IterationProfile(
                loop_id=loop.loop_id,
                body_blocks=body_blocks,
                body_instructions=body_instr,
                branch_block=loop.branch_block,
                branch_instructions=branch_instr,
            )
            self._cache[loop.loop_id] = profile
        return profile


_profile_caches: Dict[int, _ProfileCache] = {}


def iteration_profile(binary: Binary, loop: LLoop) -> IterationProfile:
    """The per-iteration profile of an innermost loop, cached per binary."""
    cache = _profile_caches.get(id(binary))
    if cache is None or cache._binary is not binary:
        cache = _ProfileCache(binary)
        _profile_caches[id(binary)] = cache
    return cache.get(loop)


class InstructionCounter(ExecutionConsumer):
    """Counts committed instructions and block executions."""

    def __init__(self, binary: Binary) -> None:
        self._binary = binary
        self.instructions = 0
        self.block_executions = 0
        self.iteration_spans = 0

    def on_block(self, block_id: int, execs: int = 1) -> None:
        self.instructions += self._binary.block(block_id).instructions * execs
        self.block_executions += execs

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = iteration_profile(self._binary, loop)
        self.instructions += profile.instructions_per_iteration * iterations
        self.block_executions += (len(profile.body_blocks) + 1) * iterations
        self.iteration_spans += 1
