"""Per-phase bias breakdowns (the paper's Tables 2 and 3).

For one binary and one method, each phase row reports the phase's
weight (fraction of executed instructions), its *true* CPI (the
instruction-weighted CPI over every interval assigned to the phase),
the CPI of the phase's single simulation point, and the signed bias
``(true - SP) / true``. Comparing these rows across two binaries shows
whether the method's bias is consistent — the heart of the paper's
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.estimate import signed_relative_error
from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError


@dataclass(frozen=True)
class PhaseRow:
    """One phase's statistics in one binary."""

    rank: int  # 1-based, by descending weight
    cluster: int
    weight: float
    true_cpi: float
    sp_cpi: float

    @property
    def cpi_error(self) -> float:
        """Signed bias, as the paper's tables print it."""
        return signed_relative_error(self.true_cpi, self.sp_cpi)


def phase_table(
    labels: Sequence[int],
    interval_stats: Sequence[IntervalStats],
    point_intervals: Mapping[int, int],
    weights: Optional[Mapping[int, float]] = None,
    top: int = 3,
) -> Tuple[PhaseRow, ...]:
    """Build the largest-``top`` phase rows for one binary.

    ``labels`` assigns each interval to a cluster; ``interval_stats``
    are this binary's per-interval detailed statistics (same indexing);
    ``point_intervals`` maps each cluster to its simulation point's
    interval index. ``weights`` overrides the phase weights (used for
    the VLI method, whose weights are re-measured per binary); when
    omitted, weights are computed from the interval statistics.
    """
    if len(labels) != len(interval_stats):
        raise SimulationError(
            f"{len(labels)} labels but {len(interval_stats)} interval stats"
        )
    per_cluster: Dict[int, IntervalStats] = {}
    total_instructions = 0
    for label, stats in zip(labels, interval_stats):
        agg = per_cluster.setdefault(label, IntervalStats())
        agg.instructions += stats.instructions
        agg.cycles += stats.cycles
        total_instructions += stats.instructions
    if total_instructions <= 0:
        raise SimulationError("no instructions in any interval")

    rows = []
    for cluster, agg in per_cluster.items():
        if cluster not in point_intervals:
            raise SimulationError(f"no simulation point for cluster {cluster}")
        sp_index = point_intervals[cluster]
        if weights is not None:
            weight = weights.get(cluster, 0.0)
        else:
            weight = agg.instructions / total_instructions
        rows.append(
            (weight, cluster, agg.cpi, interval_stats[sp_index].cpi)
        )
    rows.sort(key=lambda row: (-row[0], row[1]))
    return tuple(
        PhaseRow(
            rank=rank + 1,
            cluster=cluster,
            weight=weight,
            true_cpi=true_cpi,
            sp_cpi=sp_cpi,
        )
        for rank, (weight, cluster, true_cpi, sp_cpi) in enumerate(rows[:top])
    )
