"""Phase variance and estimate-confidence analytics.

SimPoint's whole-program estimate replaces each phase by a single
interval. How much that can err depends on how *homogeneous* each
phase is: a tight phase (all intervals alike) is represented almost
perfectly by any member; a loose one is a gamble. This module
quantifies that:

* :func:`phase_statistics` — per phase: weight, instruction-weighted
  mean CPI, weighted standard deviation, and coefficient of variation;
* :func:`estimate_confidence` — modelling each phase's representative
  as a draw from the phase's interval population, the estimate's
  standard deviation is ``sqrt(sum_c w_c^2 sigma_c^2)``; reported as a
  relative half-width at ~95% (1.96 sigma).

These are diagnostics, not guarantees: the representative is chosen
near the centroid, not at random, so the true error is usually well
inside the reported band (compare Figure 3's measured errors).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError


@dataclass(frozen=True)
class PhaseStatistics:
    """Weighted CPI statistics of one phase's intervals."""

    cluster: int
    weight: float
    n_intervals: int
    mean_cpi: float
    std_cpi: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std_cpi / self.mean_cpi if self.mean_cpi else 0.0


def phase_statistics(
    labels: Sequence[int],
    interval_stats: Sequence[IntervalStats],
) -> Tuple[PhaseStatistics, ...]:
    """Per-phase weighted CPI statistics for one binary."""
    if len(labels) != len(interval_stats):
        raise SimulationError(
            f"{len(labels)} labels but {len(interval_stats)} intervals"
        )
    if not labels:
        raise SimulationError("need at least one interval")
    per_cluster: Dict[int, List[IntervalStats]] = {}
    total_instructions = 0
    for label, stats in zip(labels, interval_stats):
        per_cluster.setdefault(label, []).append(stats)
        total_instructions += stats.instructions

    result: List[PhaseStatistics] = []
    for cluster in sorted(per_cluster):
        members = per_cluster[cluster]
        instructions = sum(m.instructions for m in members)
        mean = sum(m.cycles for m in members) / instructions
        variance = (
            sum(m.instructions * (m.cpi - mean) ** 2 for m in members)
            / instructions
        )
        result.append(
            PhaseStatistics(
                cluster=cluster,
                weight=instructions / total_instructions,
                n_intervals=len(members),
                mean_cpi=mean,
                std_cpi=math.sqrt(max(variance, 0.0)),
            )
        )
    return tuple(result)


@dataclass(frozen=True)
class ConfidenceReport:
    """Sampling-uncertainty diagnostics of one binary's estimate."""

    phases: Tuple[PhaseStatistics, ...]
    estimate_std: float
    mean_cpi: float

    @property
    def relative_half_width_95(self) -> float:
        """Half-width of a ~95% band, relative to the mean CPI."""
        if self.mean_cpi <= 0:
            raise SimulationError("mean CPI must be positive")
        return 1.96 * self.estimate_std / self.mean_cpi

    def loosest_phase(self) -> PhaseStatistics:
        """The phase with the largest coefficient of variation."""
        return max(self.phases, key=lambda phase: phase.cov)


def estimate_confidence(
    labels: Sequence[int],
    interval_stats: Sequence[IntervalStats],
    weights: Optional[Mapping[int, float]] = None,
) -> ConfidenceReport:
    """Uncertainty of a one-point-per-phase estimate for one binary.

    ``weights`` overrides the phase weights (the VLI method re-measures
    them per binary); by default the weights implied by the interval
    statistics are used.
    """
    phases = phase_statistics(labels, interval_stats)
    if weights is not None:
        phases = tuple(
            PhaseStatistics(
                cluster=phase.cluster,
                weight=weights.get(phase.cluster, 0.0),
                n_intervals=phase.n_intervals,
                mean_cpi=phase.mean_cpi,
                std_cpi=phase.std_cpi,
            )
            for phase in phases
        )
    variance = sum(
        (phase.weight * phase.std_cpi) ** 2 for phase in phases
    )
    mean = sum(phase.weight * phase.mean_cpi for phase in phases)
    return ConfidenceReport(
        phases=phases,
        estimate_std=math.sqrt(variance),
        mean_cpi=mean,
    )
