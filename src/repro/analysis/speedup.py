"""Cross-binary speedup estimation and its error (paper Section 5.2).

``TrueSpeedup`` between two binaries is the ratio of their full-run
cycle counts; ``EstimatedSpeedup`` is the same ratio over
sampled-simulation cycle estimates. The paper's error metric is
``|(TrueSpeedup - EstimatedSpeedup) / TrueSpeedup|``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.estimate import MethodEstimate, relative_error
from repro.errors import SimulationError


@dataclass(frozen=True)
class SpeedupComparison:
    """One binary-pair speedup comparison under one method."""

    method: str
    baseline_name: str  # the "from" binary (numerator of the ratio)
    improved_name: str  # the "to" binary (denominator)
    true_speedup: float
    estimated_speedup: float

    @property
    def error(self) -> float:
        return relative_error(self.true_speedup, self.estimated_speedup)


def speedup_comparison(
    baseline: MethodEstimate, improved: MethodEstimate
) -> SpeedupComparison:
    """Compare two binaries' estimates produced by the same method.

    Following the paper's convention, e.g. the ``32u32o`` configuration
    has the 32-bit unoptimized binary as ``baseline`` and the 32-bit
    optimized binary as ``improved``: the true speedup is the ratio of
    cycles(baseline) to cycles(improved).
    """
    if baseline.method != improved.method:
        raise SimulationError(
            f"cannot compare methods {baseline.method!r} and "
            f"{improved.method!r}"
        )
    if improved.true_cycles <= 0 or improved.estimated_cycles <= 0:
        raise SimulationError("cycle counts must be positive")
    return SpeedupComparison(
        method=baseline.method,
        baseline_name=baseline.binary_name,
        improved_name=improved.binary_name,
        true_speedup=baseline.true_cycles / improved.true_cycles,
        estimated_speedup=baseline.estimated_cycles
        / improved.estimated_cycles,
    )
