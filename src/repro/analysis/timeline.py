"""Phase timelines: a compact text view of phase behaviour over time.

SimPoint's phase labels are a time series — one label per interval.
Rendering them as a character strip makes the periodic structure (and
cross-binary clustering differences) visible at a glance:

    phase timeline (each column ~1 interval)
    AAABBCCAAABBCC...
    legend: A=phase 0 (34.2%), B=phase 1 (33.1%), ...

Used by the CLI's ``phases`` command and handy in notebooks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _glyph(label: int) -> str:
    if label < 0:
        raise SimulationError(f"negative phase label {label}")
    if label < len(_GLYPHS):
        return _GLYPHS[label]
    return "#"  # beyond 26 phases: lump together visually


def phase_strip(labels: Sequence[int], width: int = 72) -> str:
    """The label sequence as character rows of at most ``width``."""
    if not labels:
        raise SimulationError("cannot render an empty timeline")
    if width < 1:
        raise SimulationError(f"width must be positive, got {width}")
    chars = "".join(_glyph(label) for label in labels)
    rows = [
        chars[start:start + width] for start in range(0, len(chars), width)
    ]
    return "\n".join(rows)


def render_phase_timeline(
    labels: Sequence[int],
    weights: Optional[Dict[int, float]] = None,
    title: str = "phase timeline",
    width: int = 72,
) -> str:
    """A titled strip plus a legend with optional phase weights."""
    strip = phase_strip(labels, width)
    seen: List[int] = []
    for label in labels:
        if label not in seen:
            seen.append(label)
    legend_parts = []
    for label in sorted(seen):
        entry = f"{_glyph(label)}=phase {label}"
        if weights is not None and label in weights:
            entry += f" ({weights[label]:.1%})"
        legend_parts.append(entry)
    legend = "legend: " + ", ".join(legend_parts)
    return (
        f"{title} ({len(labels)} intervals, 1 char per interval)\n"
        f"{strip}\n{legend}"
    )
