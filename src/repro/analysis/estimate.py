"""Whole-program estimates from sampled simulation.

SimPoint's promise (paper Section 2.3 step 6): simulate one interval
per phase, then estimate any architecture metric as the weighted
average of the per-point measurements. Here the metric is CPI; the
estimated cycle count (estimated CPI x total instructions) is what the
speedup analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError


def relative_error(true_value: float, estimate: float) -> float:
    """The paper's error metric: ``|true - estimate| / true``."""
    if true_value == 0:
        raise SimulationError("relative error undefined for true value 0")
    return abs(true_value - estimate) / abs(true_value)


def signed_relative_error(true_value: float, estimate: float) -> float:
    """Signed bias, as shown in the paper's Tables 2-3:
    ``(true - estimate) / true``."""
    if true_value == 0:
        raise SimulationError("relative error undefined for true value 0")
    return (true_value - estimate) / true_value


def estimate_weighted_metric(
    point_weights: Sequence[Tuple[int, float]],
    interval_stats: Sequence[IntervalStats],
    metric,
) -> float:
    """Weighted estimate of ANY per-interval architecture metric.

    The paper's step 6: "SimPoint computes a weighted average for the
    architecture metric of interest (CPI, miss rate, etc.)". ``metric``
    maps an :class:`IntervalStats` to a number (e.g.
    ``lambda s: s.dram_mpki``); the estimate is the weight-normalized
    average over the simulation points.
    """
    if not point_weights:
        raise SimulationError("no simulation points")
    total_weight = sum(weight for _, weight in point_weights)
    if total_weight <= 0:
        raise SimulationError(f"weights sum to {total_weight}")
    estimate = 0.0
    for interval_index, weight in point_weights:
        if not 0 <= interval_index < len(interval_stats):
            raise SimulationError(
                f"simulation point interval {interval_index} out of "
                f"range ({len(interval_stats)} intervals)"
            )
        estimate += (weight / total_weight) * metric(
            interval_stats[interval_index]
        )
    return estimate


@dataclass(frozen=True)
class MethodEstimate:
    """One method's estimate for one binary."""

    binary_name: str
    method: str  # "fli" or "vli"
    n_points: int
    true_cpi: float
    estimated_cpi: float
    total_instructions: int
    true_cycles: float

    @property
    def cpi_error(self) -> float:
        return relative_error(self.true_cpi, self.estimated_cpi)

    @property
    def estimated_cycles(self) -> float:
        """Estimated whole-run cycles (the PinPoints-style projection).

        Total instruction counts are known exactly from the functional
        run, so only the CPI is estimated.
        """
        return self.estimated_cpi * self.total_instructions


def estimate_from_points(
    binary_name: str,
    method: str,
    point_weights: Sequence[Tuple[int, float]],
    interval_stats: Sequence[IntervalStats],
    true_stats: IntervalStats,
) -> MethodEstimate:
    """Build a :class:`MethodEstimate` from chosen points and weights.

    ``point_weights`` pairs each simulation point's interval index with
    its weight (per-binary weights for the VLI method; the profiled
    binary's own weights for FLI). Weights are renormalized defensively
    (they should already sum to 1). All bounds and weight validation
    lives in :func:`estimate_weighted_metric`; failures are re-raised
    with the binary name prefixed.
    """
    try:
        estimated = estimate_weighted_metric(
            point_weights, interval_stats, lambda s: s.cpi
        )
    except SimulationError as exc:
        raise SimulationError(f"{binary_name}: {exc}") from None
    return MethodEstimate(
        binary_name=binary_name,
        method=method,
        n_points=len(point_weights),
        true_cpi=true_stats.cpi,
        estimated_cpi=estimated,
        total_instructions=true_stats.instructions,
        true_cycles=true_stats.cycles,
    )
