"""Estimation and comparison analytics.

* :mod:`repro.analysis.estimate` — whole-program CPI estimates from
  weighted simulation points, and the paper's relative-error metric;
* :mod:`repro.analysis.speedup` — true/estimated cross-binary speedups
  and the speedup-error metric of Section 5.2;
* :mod:`repro.analysis.phases` — per-phase weight / true CPI / SimPoint
  CPI / bias breakdowns (the paper's Tables 2 and 3).
"""

from repro.analysis.confidence import (
    ConfidenceReport,
    PhaseStatistics,
    estimate_confidence,
    phase_statistics,
)
from repro.analysis.estimate import (
    MethodEstimate,
    estimate_from_points,
    estimate_weighted_metric,
    relative_error,
    signed_relative_error,
)
from repro.analysis.phases import PhaseRow, phase_table
from repro.analysis.speedup import SpeedupComparison, speedup_comparison
from repro.analysis.systematic import (
    SystematicSample,
    compare_sampling_budgets,
    systematic_sample,
)
from repro.analysis.timeline import phase_strip, render_phase_timeline

__all__ = [
    "ConfidenceReport",
    "PhaseStatistics",
    "estimate_confidence",
    "phase_statistics",
    "MethodEstimate",
    "estimate_from_points",
    "estimate_weighted_metric",
    "relative_error",
    "signed_relative_error",
    "PhaseRow",
    "phase_table",
    "SpeedupComparison",
    "speedup_comparison",
    "phase_strip",
    "render_phase_timeline",
    "SystematicSample",
    "compare_sampling_budgets",
    "systematic_sample",
]
