"""Systematic (statistical) sampling baseline.

The paper's related work contrasts phase-based sampling (SimPoint)
with statistical approaches that sample execution at regular intervals
(SMARTS-style systematic sampling; the paper's reference [8] samples
by program structure). This module implements the classic baseline:

* measure every ``period``-th interval in detail (starting at a fixed
  offset);
* estimate the whole-program metric as the instruction-weighted mean
  over the measured intervals;
* report a CLT-based confidence interval from the sample variance.

It plugs into the same per-interval statistics the trackers produce,
so the three methods (per-binary SimPoint, Cross Binary SimPoint, and
systematic sampling) can be compared on identical runs. Note that for
cross-binary comparisons systematic sampling has the same structural
problem as per-binary SimPoint — the sampled positions fall on
different semantic parts of execution in each binary — plus a much
larger detailed-simulation budget for comparable variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError


@dataclass(frozen=True)
class SystematicSample:
    """A systematic sample of intervals and the derived estimate."""

    period: int
    offset: int
    sampled_indices: Tuple[int, ...]
    estimate: float
    std_error: float
    sampled_instructions: int
    total_instructions: int

    @property
    def n_samples(self) -> int:
        return len(self.sampled_indices)

    @property
    def detail_fraction(self) -> float:
        """Fraction of instructions simulated in detail."""
        return self.sampled_instructions / self.total_instructions

    @property
    def half_width_95(self) -> float:
        """~95% confidence half-width (CLT)."""
        return 1.96 * self.std_error


def systematic_sample(
    interval_stats: Sequence[IntervalStats],
    period: int,
    offset: int = 0,
    metric: Callable[[IntervalStats], float] = lambda stats: stats.cpi,
) -> SystematicSample:
    """Estimate a metric by measuring every ``period``-th interval.

    The estimate weights each sampled interval by its instruction count
    (intervals may be variable-length); the standard error comes from
    the weighted sample variance over the sampled metric values.
    """
    if period < 1:
        raise SimulationError(f"period must be >= 1, got {period}")
    if not 0 <= offset < period:
        raise SimulationError(
            f"offset must be in [0, {period}), got {offset}"
        )
    if not interval_stats:
        raise SimulationError("no intervals to sample")
    indices = tuple(range(offset, len(interval_stats), period))
    if not indices:
        raise SimulationError(
            f"period {period} with offset {offset} samples nothing from "
            f"{len(interval_stats)} intervals"
        )
    sampled = [interval_stats[i] for i in indices]
    weight_total = sum(s.instructions for s in sampled)
    mean = (
        sum(metric(s) * s.instructions for s in sampled) / weight_total
    )
    variance = (
        sum(
            s.instructions * (metric(s) - mean) ** 2 for s in sampled
        )
        / weight_total
    )
    n = len(sampled)
    std_error = math.sqrt(variance / n) if n > 1 else float("inf")
    return SystematicSample(
        period=period,
        offset=offset,
        sampled_indices=indices,
        estimate=mean,
        std_error=std_error,
        sampled_instructions=weight_total,
        total_instructions=sum(s.instructions for s in interval_stats),
    )


def compare_sampling_budgets(
    interval_stats: Sequence[IntervalStats],
    true_value: float,
    periods: Sequence[int],
    metric: Callable[[IntervalStats], float] = lambda stats: stats.cpi,
) -> List[Tuple[int, SystematicSample, float]]:
    """Sweep sampling periods; returns (period, sample, relative error).

    Used by the sampling-budget comparison benchmark: SimPoint's
    handful of phase-picked points versus systematic sampling at
    various budgets.
    """
    if true_value == 0:
        raise SimulationError("true value must be non-zero")
    results = []
    for period in periods:
        sample = systematic_sample(interval_stats, period, metric=metric)
        error = abs(sample.estimate - true_value) / abs(true_value)
        results.append((period, sample, error))
    return results
