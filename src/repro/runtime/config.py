"""Process-wide runtime defaults: job count and active profile cache.

Resolution order for the job count (first match wins):

1. an explicit ``jobs=`` argument at the call site;
2. the ``REPRO_JOBS`` environment variable (``1`` forces serial);
3. a process default installed by :func:`set_jobs` (the CLI's
   ``--jobs`` flag lands here);
4. serial (``1``) — library calls never fan out unless asked to.

The active cache is ``None`` (disabled) unless :func:`set_cache`
installed one or ``REPRO_CACHE_DIR`` names a directory;
``REPRO_NO_CACHE=1`` disables the environment fallback.

Profiling consumers replay compiled execution traces by default
(:mod:`repro.execution.trace`); ``REPRO_NO_TRACE=1`` forces every
consumer onto its scalar event-stream oracle instead (results are
bit-identical either way — the knob exists for debugging and for
timing the oracle).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.errors import CacheError
from repro.runtime.cache import ProfileCache

_UNSET = object()

_default_jobs: Optional[int] = None
_cache: object = _UNSET  # _UNSET -> fall back to the environment
_default_match_confidence: Optional[float] = None
_default_sim_cache: Optional[bool] = None
_default_clustering_cache: Optional[bool] = None


def set_jobs(jobs: Optional[int]) -> None:
    """Install (or clear, with ``None``) the process default job count."""
    global _default_jobs
    if jobs is not None and jobs < 1:
        raise CacheError(f"jobs must be >= 1, got {jobs}")
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective job count for one fan-out call."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise CacheError(f"REPRO_JOBS must be an integer, got {env!r}")
    if _default_jobs is not None:
        return _default_jobs
    return 1


def set_match_confidence(threshold: Optional[float]) -> None:
    """Install (or clear, with ``None``) the default match threshold."""
    global _default_match_confidence
    if threshold is not None and not 0.0 < float(threshold) <= 1.0:
        raise CacheError(
            f"match confidence must be in (0, 1], got {threshold}"
        )
    _default_match_confidence = (
        None if threshold is None else float(threshold)
    )


def resolve_match_confidence(threshold: Optional[float] = None) -> float:
    """The effective fuzzy-match confidence threshold.

    Resolution order: explicit argument, ``REPRO_MATCH_CONFIDENCE``,
    process default from :func:`set_match_confidence` (the CLI's
    ``--match-confidence`` flag lands here), then ``1.0`` — exact
    matching only, bit-identical to the matcher without the fuzzy
    fallback.
    """
    if threshold is not None:
        value = float(threshold)
    else:
        env = os.environ.get("REPRO_MATCH_CONFIDENCE")
        if env:
            try:
                value = float(env)
            except ValueError:
                raise CacheError(
                    f"REPRO_MATCH_CONFIDENCE must be a number, got {env!r}"
                )
        elif _default_match_confidence is not None:
            value = _default_match_confidence
        else:
            return 1.0
    if not 0.0 < value <= 1.0:
        raise CacheError(
            f"match confidence must be in (0, 1], got {value}"
        )
    return value


def set_cache(cache: Optional[ProfileCache]) -> None:
    """Install the process-wide cache (``None`` disables caching)."""
    global _cache
    _cache = cache


def active_cache() -> Optional[ProfileCache]:
    """The cache profile collectors consult when none is passed."""
    if _cache is not _UNSET:
        return _cache  # type: ignore[return-value]
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        # Install it so statistics accumulate across calls.
        set_cache(ProfileCache(root))
        return _cache  # type: ignore[return-value]
    return None


def set_sim_cache(enabled: Optional[bool]) -> None:
    """Install (or clear, with ``None``) the sim-result reuse default."""
    global _default_sim_cache
    _default_sim_cache = None if enabled is None else bool(enabled)


def sim_cache_enabled(enabled: Optional[bool] = None) -> bool:
    """Whether detailed-simulation results may be reused from the cache.

    Resolution order: explicit argument, ``REPRO_NO_SIM_CACHE`` (set →
    disabled), process default from :func:`set_sim_cache` (the CLI's
    ``--no-sim-cache`` flag lands here), then enabled. Reuse also
    requires an active profile cache — this knob only gates the
    ``"simresult"`` kind, so profiling caches keep working when it is
    off (results are bit-identical either way).
    """
    if enabled is not None:
        return enabled
    if os.environ.get("REPRO_NO_SIM_CACHE"):
        return False
    if _default_sim_cache is not None:
        return _default_sim_cache
    return True


def set_clustering_cache(enabled: Optional[bool]) -> None:
    """Install (or clear, with ``None``) the clustering reuse default."""
    global _default_clustering_cache
    _default_clustering_cache = None if enabled is None else bool(enabled)


def clustering_cache_enabled(enabled: Optional[bool] = None) -> bool:
    """Whether chosen clusterings may be reused from the cache.

    Resolution order: explicit argument, ``REPRO_NO_CLUSTERING_CACHE``
    (set → disabled), process default from :func:`set_clustering_cache`
    (the CLI's ``--no-clustering-cache`` flag lands here), then
    enabled. Reuse also requires an active profile cache — this knob
    only gates the ``"clustering"`` kind, so profiling caches keep
    working when it is off (results are bit-identical either way).
    """
    if enabled is not None:
        return enabled
    if os.environ.get("REPRO_NO_CLUSTERING_CACHE"):
        return False
    if _default_clustering_cache is not None:
        return _default_clustering_cache
    return True


def pruned_kmeans_enabled(use_pruned: Optional[bool] = None) -> bool:
    """Whether the Lloyd iteration should use the Hamerly-pruned kernel.

    An explicit ``use_pruned`` argument wins; otherwise pruning is on
    unless ``REPRO_NO_PRUNED_KMEANS`` is set in the environment
    (results are bit-identical either way — the knob exists for
    debugging and for timing the reference kernel).
    """
    if use_pruned is not None:
        return use_pruned
    return not os.environ.get("REPRO_NO_PRUNED_KMEANS")


def trace_replay_enabled(use_trace: Optional[bool] = None) -> bool:
    """Whether a profiling consumer should replay a compiled trace.

    An explicit ``use_trace`` argument wins; otherwise trace replay is
    on unless ``REPRO_NO_TRACE`` is set in the environment.
    """
    if use_trace is not None:
        return use_trace
    return not os.environ.get("REPRO_NO_TRACE")


def configure(
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    no_cache: bool = False,
    match_confidence: Optional[float] = None,
    no_sim_cache: bool = False,
    no_clustering_cache: bool = False,
) -> Optional[ProfileCache]:
    """One-shot setup used by the CLI; returns the installed cache."""
    set_jobs(jobs)
    set_match_confidence(match_confidence)
    set_sim_cache(False if no_sim_cache else None)
    set_clustering_cache(False if no_clustering_cache else None)
    if no_cache:
        set_cache(None)
        return None
    if cache_dir is not None:
        set_cache(ProfileCache(cache_dir))
    return active_cache()


@contextmanager
def runtime_session(
    jobs: Optional[int] = None,
    cache: Optional[ProfileCache] = None,
    match_confidence: Optional[float] = None,
    sim_cache: Optional[bool] = None,
    clustering_cache: Optional[bool] = None,
) -> Iterator[None]:
    """Temporarily install runtime defaults (tests use this)."""
    global _cache, _default_jobs, _default_match_confidence
    global _default_sim_cache, _default_clustering_cache
    saved = (
        _cache,
        _default_jobs,
        _default_match_confidence,
        _default_sim_cache,
        _default_clustering_cache,
    )
    try:
        _default_jobs = jobs
        _cache = cache
        _default_match_confidence = match_confidence
        _default_sim_cache = sim_cache
        _default_clustering_cache = clustering_cache
        yield
    finally:
        (
            _cache,
            _default_jobs,
            _default_match_confidence,
            _default_sim_cache,
            _default_clustering_cache,
        ) = saved
