"""Advisory file locks and atomic line appends.

The append-only stores in this codebase — the run ledger and the
job-queue submission spool — are plain JSONL files shared by
concurrent writer processes. POSIX guarantees that a *single*
``write(2)`` through an ``O_APPEND`` descriptor lands contiguously for
ordinary files, but ``open("a")`` + buffered writes can split one
logical line across several syscalls once it outgrows the buffer (or
``PIPE_BUF``-sized atomicity folklore), interleaving records. The
helpers here make the contract explicit:

* :func:`append_line` — one encoded line, one ``os.write``, fsynced;
* :func:`file_lock` — an exclusive advisory ``flock`` on a sidecar
  ``<file>.lock``, for writers that must *read-check* before appending
  (e.g. the ledger's duplicate-run-id refusal) and need the check and
  the append to be one critical section.

Locking degrades to a no-op where ``fcntl`` is unavailable; the single
``O_APPEND`` write keeps lines intact even then.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

try:  # pragma: no cover - always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]


def lock_path_for(path: PathLike) -> Path:
    """The sidecar lock file guarding ``path``."""
    target = Path(path)
    return target.with_name(target.name + ".lock")


@contextmanager
def file_lock(path: PathLike) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``path``'s sidecar lock file.

    The lock file itself is created (empty) on first use and never
    removed — unlinking a lock file while another process holds its
    descriptor reintroduces the race the lock exists to prevent.
    """
    lock_file = lock_path_for(path)
    lock_file.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(lock_file, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def append_line(path: PathLike, line: str) -> None:
    """Append one line atomically: a single ``O_APPEND`` write + fsync.

    ``line`` may or may not carry its trailing newline. Concurrent
    appenders cannot interleave bytes within each other's lines; they
    can still duplicate *logical* records, which is what wrapping the
    read-check and this call in :func:`file_lock` prevents.
    """
    data = line.encode("utf-8")
    if not data.endswith(b"\n"):
        data += b"\n"
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        written = os.write(fd, data)
        if written != len(data):  # pragma: no cover - regular files
            raise OSError(
                f"short append to {path}: {written}/{len(data)} bytes"
            )
        os.fsync(fd)
    finally:
        os.close(fd)
