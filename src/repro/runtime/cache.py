"""Content-addressed on-disk profile cache.

Every entry is stored under ``<root>/<kind>/<aa>/<digest>.pkl`` where
``digest`` is the :func:`~repro.runtime.fingerprint.fingerprint` of the
full key material — for profiles that is ``(binary, program input,
params)``, so *any* change to the binary's code, the input, or the
consumer parameters produces a different address. The module-level
:data:`CACHE_FORMAT_VERSION` is salted into every digest: bumping it
after a result-schema change invalidates the whole cache cleanly
instead of relying on stale-pickle eviction at read time. There is no
explicit invalidation beyond that: stale entries are simply never
addressed again.

Writes are atomic (temp file + ``os.replace``) so concurrent worker
processes can share one cache directory; a corrupt or unreadable entry
is treated as a miss and rewritten. :class:`CacheStats` counts hits,
misses, stale evictions, and bytes moved — both in aggregate and per
entry kind — and worker-process deltas can be merged back into the
parent's stats.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.errors import CacheError
from repro.observability import metrics
from repro.runtime.fingerprint import fingerprint

# Salted into every entry digest. Bump whenever the pickled payload
# schema of any kind changes incompatibly: old entries stop being
# addressed at all, so no process ever reads a payload written under a
# different layout.
CACHE_FORMAT_VERSION = 2


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one cache handle.

    ``by_kind`` breaks the same counters down per entry kind (the
    nested entries leave their own ``by_kind`` empty).
    """

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    stale_evictions: int = 0
    by_kind: Dict[str, "CacheStats"] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def for_kind(self, kind: str) -> "CacheStats":
        """The per-kind counter row, created on first use."""
        row = self.by_kind.get(kind)
        if row is None:
            row = self.by_kind[kind] = CacheStats()
        return row

    def merge(self, other: "CacheStats") -> None:
        """Fold another handle's counters (e.g. a worker's) into this."""
        self.hits += other.hits
        self.misses += other.misses
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.stale_evictions += other.stale_evictions
        for kind, row in other.by_kind.items():
            self.for_kind(kind).merge(row)


class ProfileCache:
    """One cache directory plus the statistics of this handle's use."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / digest[:2] / f"{digest}.pkl"

    def _digest(self, kind: str, key_material: Sequence[Any]) -> str:
        return fingerprint(kind, CACHE_FORMAT_VERSION, list(key_material))

    def lookup(
        self, kind: str, key_material: Sequence[Any]
    ) -> Tuple[bool, Any]:
        """Probe the cache: ``(True, value)`` on a hit, else
        ``(False, None)``.

        Counts the probe as a hit or miss (aggregate and per kind) but
        never computes or writes anything — callers that batch many
        probes (per-region reuse) pair this with :meth:`store`.
        """
        digest = self._digest(kind, key_material)
        path = self._path(kind, digest)
        payload: Optional[bytes]
        try:
            payload = path.read_bytes()
        except OSError:
            payload = None  # plain miss (or unreadable): recompute
        if payload is not None:
            try:
                value = pickle.loads(payload)
            except (
                pickle.UnpicklingError,
                EOFError,
                ValueError,
                # A stale entry can reference a class that moved or
                # disappeared in a refactor; unpickling then raises an
                # import/attribute failure rather than a pickle error.
                AttributeError,
                ImportError,  # covers ModuleNotFoundError
            ):
                self._evict_stale(kind, path)
            else:
                self.stats.hits += 1
                self.stats.bytes_read += len(payload)
                row = self.stats.for_kind(kind)
                row.hits += 1
                row.bytes_read += len(payload)
                metrics.counter("cache.hits").inc()
                metrics.counter(f"cache.{kind}.hits").inc()
                metrics.counter("cache.bytes_read").inc(len(payload))
                return True, value
        self.stats.misses += 1
        self.stats.for_kind(kind).misses += 1
        metrics.counter("cache.misses").inc()
        metrics.counter(f"cache.{kind}.misses").inc()
        return False, None

    def store(
        self, kind: str, key_material: Sequence[Any], value: Any
    ) -> None:
        """Write one entry (atomic; safe against concurrent writers)."""
        digest = self._digest(kind, key_material)
        self._write(kind, self._path(kind, digest), value)

    def get_or_compute(
        self,
        kind: str,
        key_material: Sequence[Any],
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached value for the key, computing it on a miss."""
        found, value = self.lookup(kind, key_material)
        if found:
            return value
        value = compute()
        self.store(kind, key_material, value)
        return value

    def _evict_stale(self, kind: str, path: Path) -> None:
        """Drop an entry whose bytes no longer unpickle in this process.

        The digest still addresses the same key, so leaving the file in
        place would crash every future lookup; deleting it turns the
        stale entry into an ordinary miss that the recompute overwrites.
        """
        try:
            path.unlink()
        except OSError:
            pass  # another handle already evicted it
        self.stats.stale_evictions += 1
        self.stats.for_kind(kind).stale_evictions += 1
        metrics.counter("cache.stale_evictions").inc()
        metrics.counter(f"cache.{kind}.stale_evictions").inc()

    def _write(self, kind: str, path: Path, value: Any) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise CacheError(
                f"cannot write cache entry {path}: {exc}"
            ) from exc
        self.stats.bytes_written += len(payload)
        self.stats.for_kind(kind).bytes_written += len(payload)
        metrics.counter("cache.bytes_written").inc(len(payload))


def merge_stats(
    cache: Optional[ProfileCache],
    deltas: Sequence[Optional[CacheStats]],
) -> None:
    """Fold worker-handle statistics back into the parent's cache."""
    if cache is None:
        return
    for delta in deltas:
        if delta is not None:
            cache.stats.merge(delta)


def cache_from_root(
    root: Optional[Union[str, Path]]
) -> Optional[ProfileCache]:
    """A fresh handle on a cache directory, or ``None`` for no cache.

    Worker processes use this to reopen the parent's cache from its
    root path (handles themselves hold per-process statistics and are
    deliberately not shared).
    """
    return ProfileCache(root) if root is not None else None
