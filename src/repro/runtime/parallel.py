"""Deterministic process-pool fan-out.

:func:`parallel_map` is ``map`` over a ``ProcessPoolExecutor`` with
three guarantees:

* **deterministic ordering** — results come back in input order, no
  matter which worker finished first;
* **serial fallback** — one job (``REPRO_JOBS=1``), one item, running
  inside another ``parallel_map`` worker, or an environment where
  process pools cannot be created (sandboxes without semaphores) all
  degrade to a plain in-process loop with identical results;
* **exception transparency** — an exception raised by ``fn`` for any
  item propagates to the caller, as in the serial loop.

Worker functions must be module-level (picklable); keyword arguments
can be bound with :func:`functools.partial`.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ReproError
from repro.runtime.config import resolve_jobs

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Set in pool workers so nested fan-outs run serially instead of
#: spawning pools-of-pools.
_in_worker = False


def _mark_worker() -> None:
    global _in_worker
    _in_worker = True


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
) -> List[_R]:
    """Apply ``fn`` to every item, fanning out over ``jobs`` processes."""
    work = list(items)
    n_jobs = min(resolve_jobs(jobs), len(work))
    if n_jobs <= 1 or _in_worker:
        return [fn(item) for item in work]
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=n_jobs, initializer=_mark_worker
        ) as pool:
            return list(pool.map(fn, work))
    except ReproError:
        raise  # a worker failed with a real library error
    except (OSError, PermissionError, concurrent.futures.process.BrokenProcessPool):
        # The pool itself could not run (restricted environment);
        # results are identical either way, so fall back to serial.
        return [fn(item) for item in work]
