"""Deterministic process-pool fan-out.

:func:`parallel_map` is ``map`` over a ``ProcessPoolExecutor`` with
three guarantees:

* **deterministic ordering** — results come back in input order, no
  matter which worker finished first;
* **serial fallback** — one job (``REPRO_JOBS=1``), one item, running
  inside another ``parallel_map`` worker, or an environment where
  process pools cannot be created (sandboxes without semaphores) all
  degrade to a plain in-process loop with identical results;
* **exception transparency** — an exception raised by ``fn`` for any
  item propagates to the caller, as in the serial loop.

It is also the pipeline's cross-process metrics seam: each pool task
runs inside a scoped :mod:`repro.observability.metrics` registry whose
snapshot ships back with the result and is merged into the parent, and
every task's latency lands in the ``parallel.task_seconds`` histogram.
Observability never changes results — payloads are unwrapped before
they are returned.

Worker functions must be module-level (picklable); keyword arguments
can be bound with :func:`functools.partial`.
"""

from __future__ import annotations

import concurrent.futures
import functools
import time
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ReproError
from repro.observability import metrics, trace
from repro.runtime.config import resolve_jobs

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Set in pool workers so nested fan-outs run serially instead of
#: spawning pools-of-pools.
_in_worker = False


def _mark_worker() -> None:
    global _in_worker
    _in_worker = True


def _observed_call(fn, indexed_item):
    """Worker shim: run one task inside a scoped metrics registry.

    Returns ``(index, result, metrics_delta, seconds)`` so the parent
    can fold the task's metrics and latency into its own registry *in
    task-index order*. Per-task scoping matters because pool workers
    are reused: absolute worker totals would double-count across tasks.
    """
    index, item = indexed_item
    start = time.perf_counter()
    with metrics.scoped_registry() as local:
        result = fn(item)
    return index, result, local.snapshot(), time.perf_counter() - start


def _serial_map(fn: Callable[[_T], _R], work: List[_T]) -> List[_R]:
    latencies = metrics.histogram("parallel.task_seconds")
    results: List[_R] = []
    for item in work:
        start = time.perf_counter()
        results.append(fn(item))
        latencies.observe(time.perf_counter() - start)
    return results


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
) -> List[_R]:
    """Apply ``fn`` to every item, fanning out over ``jobs`` processes."""
    work = list(items)
    n_jobs = min(resolve_jobs(jobs), len(work))
    if n_jobs <= 1 or _in_worker:
        return _serial_map(fn, work)
    futures: List[concurrent.futures.Future] = []
    try:
        with trace.span("parallel_map", items=len(work), jobs=n_jobs):
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=n_jobs, initializer=_mark_worker
            ) as pool:
                call = functools.partial(_observed_call, fn)
                try:
                    for indexed in enumerate(work):
                        futures.append(pool.submit(call, indexed))
                except concurrent.futures.process.BrokenProcessPool:
                    pass  # submitted futures already carry the failure
                concurrent.futures.wait(futures)
    except (OSError, PermissionError):
        # The pool itself could not start (restricted environment);
        # nothing ran, so the serial loop is a safe, identical retry.
        metrics.counter("parallel.pool_fallback").inc()
        return _serial_map(fn, work)
    observed = []
    broken_index: Optional[int] = None
    for index, future in enumerate(futures):
        error = future.exception()
        if error is None:
            observed.append(future.result())
        elif isinstance(
            error, concurrent.futures.process.BrokenProcessPool
        ):
            if broken_index is None:
                broken_index = index
        else:
            raise error  # fn failed for this item, as in the serial loop
    if broken_index is None and len(futures) < len(work):
        broken_index = len(futures)
    if broken_index is not None:
        if not observed:
            # Every task was lost before any could run: the pool never
            # really started (restricted environment). Nothing executed,
            # so serial fallback cannot double-run a side effect.
            metrics.counter("parallel.pool_fallback").inc()
            return _serial_map(fn, work)
        # A worker died *mid-run* after other tasks completed. Falling
        # back here would silently re-execute the whole batch — for
        # side-effectful tasks that is double execution, and it masks
        # the crash. Surface it instead.
        raise ReproError(
            f"parallel_map: worker process died while running task "
            f"{broken_index}/{len(work)}; {len(observed)} of "
            f"{len(work)} tasks completed before the pool broke"
        )
    # Merge snapshots in task-index order, never completion order:
    # gauge merging is last-write-wins, so any scheduling-dependent
    # order would let identical runs record different gauge values.
    # The explicit sort keeps this true even if the executor strategy
    # above ever changes to completion-order collection.
    observed.sort(key=lambda entry: entry[0])
    latencies = metrics.histogram("parallel.task_seconds")
    results: List[_R] = []
    for _index, result, delta, seconds in observed:
        metrics.merge(delta)
        latencies.observe(seconds)
        results.append(result)
    return results
