"""Stable content fingerprints for cache keys.

A fingerprint must change whenever anything that could influence a
profile changes (a block's instruction count, a loop's trip count, an
input's scale, ...) and must be identical across processes and Python
versions for equal values. Python's built-in ``hash`` is salted per
process, and ``pickle`` output is not canonical, so neither is usable.
Instead every supported object is lowered to a canonical JSON document
(dataclasses by field, mappings and sets sorted, floats by exact hex
representation) and hashed with SHA-256.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Mapping

from repro.errors import ReproError

#: Bump when the canonical encoding (or any cached value's schema)
#: changes, so stale cache entries from older code can never be loaded.
FORMAT_VERSION = 1


class FingerprintError(ReproError):
    """An object cannot be canonically encoded for fingerprinting."""


def _canonical(obj: Any) -> Any:
    """Lower ``obj`` to a JSON-serializable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # hex() is exact and canonical; repr() round-trips but its
        # shortest-form guarantee is an implementation detail.
        return {"__float__": obj.hex()}
    if isinstance(obj, enum.Enum):
        return {
            "__enum__": type(obj).__name__,
            "value": _canonical(obj.value),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        items = [[_canonical(k), _canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__mapping__": items}
    if isinstance(obj, (list, tuple)):
        return {"__sequence__": [_canonical(item) for item in obj]}
    if isinstance(obj, (set, frozenset)):
        items = [_canonical(item) for item in obj]
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {"__set__": items}
    raise FingerprintError(
        f"cannot fingerprint {type(obj).__name__!r} objects"
    )


def fingerprint(*objects: Any) -> str:
    """SHA-256 hex digest of the objects' canonical encoding."""
    document = json.dumps(
        [FORMAT_VERSION, [_canonical(obj) for obj in objects]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()
