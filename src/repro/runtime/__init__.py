"""Runtime layer: profile caching and process-pool fan-out.

The execution engine is deterministic, so every profile it produces is
a pure function of ``(binary, program input, consumer kind, params)``.
This package exploits that twice:

* :mod:`repro.runtime.cache` — a content-addressed on-disk cache that
  memoizes call-branch profiles, FLI/VLI BBVs, and per-interval
  instruction counts, keyed by a stable fingerprint of everything that
  can influence the result (:mod:`repro.runtime.fingerprint`);
* :mod:`repro.runtime.parallel` — a :func:`parallel_map` that fans
  independent per-binary work out over a process pool with
  deterministic (input-order) results and a serial fallback
  (``REPRO_JOBS=1`` or any environment where pools are unavailable).

:mod:`repro.runtime.config` holds the process-wide defaults that the
CLI flags (``--jobs``, ``--cache-dir``, ``--no-cache``) and the
``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` environment
variables configure. Cached and parallel runs are bit-identical to
serial uncached runs: the cache stores exactly what the profilers
return, and the pool only changes *where* each deterministic profile is
computed, never in what order results are consumed.
"""

from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    ProfileCache,
    cache_from_root,
)
from repro.runtime.config import (
    active_cache,
    clustering_cache_enabled,
    configure,
    pruned_kmeans_enabled,
    resolve_jobs,
    runtime_session,
    set_cache,
    set_clustering_cache,
    set_jobs,
    set_sim_cache,
    sim_cache_enabled,
)
from repro.runtime.fingerprint import fingerprint
from repro.runtime.parallel import parallel_map

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ProfileCache",
    "active_cache",
    "cache_from_root",
    "clustering_cache_enabled",
    "configure",
    "fingerprint",
    "parallel_map",
    "pruned_kmeans_enabled",
    "resolve_jobs",
    "runtime_session",
    "set_cache",
    "set_clustering_cache",
    "set_jobs",
    "set_sim_cache",
    "sim_cache_enabled",
]
