"""Program inputs.

The paper runs every benchmark with its SPEC *reference* input. Our
synthetic programs take a :class:`ProgramInput` whose ``scale`` multiplies
the trip counts of input-scaled loops, so the same program can be run at
"test"-sized or "ref"-sized lengths. All resolution is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError


@dataclass(frozen=True)
class ProgramInput:
    """A named input that scales the input-dependent loop trip counts."""

    name: str
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ProgramError(f"input scale must be positive, got {self.scale}")

    def resolve_trips(self, base_trips: int, input_scaled: bool) -> int:
        """Resolve a loop's trip count under this input.

        Input-scaled loops multiply their base trip count by the input
        scale; other loops are input-independent. Trip counts are always
        at least 1 (a loop that is entered iterates at least once in our
        IR; zero-trip loops are modelled by not entering the loop).
        """
        if base_trips < 1:
            raise ProgramError(f"base trip count must be >= 1, got {base_trips}")
        if not input_scaled:
            return base_trips
        return max(1, int(round(base_trips * self.scale)))


#: The paper's reference input at our default scale.
REF_INPUT = ProgramInput(name="ref", scale=1.0)

#: A small input for fast tests.
TEST_INPUT = ProgramInput(name="test", scale=0.25)
