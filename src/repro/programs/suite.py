"""The synthetic SPEC CPU2000-like benchmark suite.

The paper evaluates on 21 SPEC CPU2000 programs compiled four ways. SPEC
binaries are unavailable offline, so this module generates 21 structured
programs with the same names, designed so that every mechanism the paper
studies is exercised:

* **Phase behaviour** — each program's ``main`` repeats a sequence of
  *stages*; each stage is a distinct mixture over a pool of shared
  *kernel* procedures plus occasional private kernels. Stages produce
  distinct basic block vectors, so SimPoint discovers them as phases.
* **Cross-binary clustering instability** — because stages are mixtures
  over *shared* kernels, their BBVs form a continuum. Per-target
  instruction scaling re-weights BBV dimensions differently in every
  binary, which warps the clustering geometry and lets per-binary
  SimPoint group borderline stages differently across binaries — the
  inconsistent-bias effect of the paper's Section 5.2.
* **More behaviours than phases** — several programs have more distinct
  stages than the paper's maxK=10 cluster budget, forcing groupings.
* **The applu hazard** — ``applu`` contains five equal-trip-count PDE
  procedures called from a solver loop. The optimizer inlines them and
  splits their loops, leaving no unambiguous mappable points inside the
  solver body (paper Section 5.1's applu discussion), so mappable VLIs
  grow much larger than the target there.

All generation is driven by per-benchmark seeds; the suite is fully
deterministic.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ProgramError
from repro.programs.behaviors import (
    AccessKind,
    MemoryBehavior,
    blocked,
    pointer_chasing,
    random_access,
    streaming,
)
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    Statement,
    finalize_program,
)


class WorkloadClass(enum.Enum):
    """Coarse behaviour family, mirroring SPECint/SPECfp personalities."""

    INT_POINTER = "int_pointer"
    INT_MIXED = "int_mixed"
    FP_STREAM = "fp_stream"
    FP_BLOCKED = "fp_blocked"


@dataclass(frozen=True)
class BenchmarkSpec:
    """Seeded personality of one synthetic benchmark."""

    name: str
    workload_class: WorkloadClass
    n_kernels: int
    n_stages: int
    repeats: int
    target_minstr: float  # target source-level instructions, in millions
    seed: int
    footprint_range: Tuple[int, int] = (32 * 1024, 4 * 1024 * 1024)
    applu_hazard: bool = False


_KB = 1024
_MB = 1024 * 1024

#: The 21 benchmarks of the paper's Figures 1-5, with personalities chosen
#: to echo the real programs (pointer-heavy gcc/mcf, streaming swim/lucas,
#: cache-friendly eon/mesa/crafty, the applu inlining hazard, ...).
BENCHMARK_SPECS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("ammp", WorkloadClass.FP_BLOCKED, 7, 7, 4, 4.0, 1101,
                      (32 * _KB, 1 * _MB)),
        BenchmarkSpec("applu", WorkloadClass.FP_STREAM, 5, 5, 4, 6.5, 1102,
                      (64 * _KB, 4 * _MB), applu_hazard=True),
        BenchmarkSpec("apsi", WorkloadClass.FP_STREAM, 8, 12, 4, 5.0, 1103,
                      (48 * _KB, 2 * _MB)),
        BenchmarkSpec("art", WorkloadClass.FP_STREAM, 4, 3, 6, 3.5, 1104,
                      (256 * _KB, 2 * _MB)),
        BenchmarkSpec("bzip2", WorkloadClass.INT_MIXED, 6, 6, 5, 4.0, 1105,
                      (64 * _KB, 1 * _MB)),
        BenchmarkSpec("crafty", WorkloadClass.INT_POINTER, 8, 8, 5, 4.0, 1106,
                      (8 * _KB, 256 * _KB)),
        BenchmarkSpec("eon", WorkloadClass.INT_MIXED, 7, 6, 4, 3.5, 1107,
                      (8 * _KB, 128 * _KB)),
        BenchmarkSpec("equake", WorkloadClass.FP_STREAM, 6, 5, 5, 4.0, 1108,
                      (128 * _KB, 3 * _MB)),
        BenchmarkSpec("fma3d", WorkloadClass.FP_BLOCKED, 9, 10, 3, 4.5, 1109,
                      (32 * _KB, 1 * _MB)),
        BenchmarkSpec("gcc", WorkloadClass.INT_POINTER, 10, 14, 3, 5.0, 1110,
                      (32 * _KB, 2 * _MB)),
        BenchmarkSpec("gzip", WorkloadClass.INT_MIXED, 5, 5, 6, 3.5, 1111,
                      (32 * _KB, 512 * _KB)),
        BenchmarkSpec("lucas", WorkloadClass.FP_STREAM, 5, 4, 5, 4.0, 1112,
                      (2 * _MB, 16 * _MB)),
        BenchmarkSpec("mcf", WorkloadClass.INT_POINTER, 5, 4, 5, 3.5, 1113,
                      (1 * _MB, 12 * _MB)),
        BenchmarkSpec("mesa", WorkloadClass.FP_BLOCKED, 7, 6, 5, 4.0, 1114,
                      (8 * _KB, 192 * _KB)),
        BenchmarkSpec("perlbmk", WorkloadClass.INT_POINTER, 8, 11, 3, 4.0, 1115,
                      (32 * _KB, 1 * _MB)),
        BenchmarkSpec("sixtrack", WorkloadClass.FP_BLOCKED, 7, 7, 4, 4.0, 1116,
                      (16 * _KB, 512 * _KB)),
        BenchmarkSpec("swim", WorkloadClass.FP_STREAM, 4, 3, 6, 4.0, 1117,
                      (4 * _MB, 16 * _MB)),
        BenchmarkSpec("twolf", WorkloadClass.INT_POINTER, 7, 8, 4, 4.0, 1118,
                      (64 * _KB, 1 * _MB)),
        BenchmarkSpec("vortex", WorkloadClass.INT_POINTER, 8, 9, 4, 4.0, 1119,
                      (64 * _KB, 1 * _MB)),
        BenchmarkSpec("vpr", WorkloadClass.INT_POINTER, 6, 7, 4, 4.0, 1120,
                      (32 * _KB, 1 * _MB)),
        BenchmarkSpec("wupwise", WorkloadClass.FP_STREAM, 6, 5, 5, 4.0, 1121,
                      (128 * _KB, 2 * _MB)),
    ]
}


def benchmark_names() -> Tuple[str, ...]:
    """The paper's benchmark names, in figure order."""
    return tuple(BENCHMARK_SPECS)


def _log_uniform(rng: random.Random, low: int, high: int) -> int:
    """Log-uniformly distributed integer in [low, high]."""
    import math

    return int(round(math.exp(rng.uniform(math.log(low), math.log(high)))))


def _pick_behavior(
    rng: random.Random, spec: BenchmarkSpec
) -> MemoryBehavior:
    """Draw a kernel memory behaviour from the class's distribution."""
    low, high = spec.footprint_range
    footprint = _log_uniform(rng, low, high)
    refs = rng.randint(1, 6)
    wc = spec.workload_class
    if wc is WorkloadClass.INT_POINTER:
        roll = rng.random()
        if roll < 0.4:
            return pointer_chasing(footprint, refs)
        if roll < 0.8:
            return random_access(footprint, refs,
                                 pointer_fraction=rng.uniform(0.4, 0.8))
        return streaming(footprint, refs, stride=rng.choice((8, 16, 32)))
    if wc is WorkloadClass.INT_MIXED:
        roll = rng.random()
        if roll < 0.4:
            return streaming(footprint, refs, stride=rng.choice((8, 16, 32)))
        if roll < 0.7:
            return random_access(footprint, refs,
                                 pointer_fraction=rng.uniform(0.1, 0.4))
        return blocked(footprint, refs)
    if wc is WorkloadClass.FP_STREAM:
        if rng.random() < 0.75:
            return streaming(footprint, refs, stride=rng.choice((16, 32, 64)))
        return blocked(footprint, refs)
    # FP_BLOCKED
    if rng.random() < 0.6:
        return blocked(footprint, refs)
    return streaming(footprint, refs, stride=16)


class _StreamRegistry:
    """Names every data stream a benchmark touches.

    Named streams give each kernel a stable data region identity: every
    occurrence of a stage touches the *same* data as its previous
    occurrences (as real programs do), rather than a fresh region.
    An explicit data-initialization stage was tried here and removed:
    at our scaled-down run lengths (DESIGN.md) the cold first-touch
    cost of sweeping realistic footprints dominates whole intervals and
    distorts clustering far more than the cold-start gradient it was
    meant to cure.
    """

    def __init__(self) -> None:
        self.streams: List[Tuple[str, MemoryBehavior]] = []

    def register(self, name: str, behavior: MemoryBehavior) -> str:
        self.streams.append((name, behavior))
        return name


@dataclass
class _KernelDef:
    """A generated kernel procedure and its per-call source cost."""

    proc: Procedure
    cost: int  # source instructions per call


def _kernel_cost(trips: int, compute_instrs: List[int]) -> int:
    return trips * sum(compute_instrs)


def _make_kernel(
    rng: random.Random,
    spec: BenchmarkSpec,
    index: int,
    registry: _StreamRegistry,
) -> _KernelDef:
    """Build one kernel procedure: a small loop around 1-2 compute blocks."""
    trips = rng.randint(8, 28)
    n_computes = 1 if rng.random() < 0.6 else 2
    computes = []
    instrs: List[int] = []
    for c in range(n_computes):
        instr = rng.randint(50, 140)
        instrs.append(instr)
        behavior = _pick_behavior(rng, spec)
        stream = registry.register(f"k{index}_c{c}_data", behavior)
        computes.append(
            Compute(
                f"k{index}_c{c}",
                instructions=instr,
                behavior=behavior,
                stream=stream,
            )
        )
    body: Tuple[Statement, ...] = (
        Loop(
            f"k{index}_loop",
            trips=trips,
            body=tuple(computes),
            unrollable=rng.random() < 0.5,
            splittable=(n_computes > 1 and rng.random() < 0.5),
        ),
    )
    proc = Procedure(
        name=f"kern_{index}",
        body=body,
        inlinable=rng.random() < 0.45,
    )
    return _KernelDef(proc=proc, cost=_kernel_cost(trips, instrs))


@dataclass
class _StageDef:
    proc: Procedure
    cost: int  # source instructions per call
    extra_procs: Tuple[Procedure, ...] = ()


def _make_stage(
    rng: random.Random,
    spec: BenchmarkSpec,
    index: int,
    kernels: List[_KernelDef],
    registry: _StreamRegistry,
) -> _StageDef:
    """Build one stage: an outer loop over a kernel mixture.

    Stages draw 2-4 kernels from the shared pool with small repetition
    counts, so stage BBVs are points on a mixture continuum over the
    shared kernel blocks. Roughly half the stages also get a private
    compute kernel, which makes them clearly separable phases. Some
    stages get a private *single-call-site* inlinable helper whose loop
    the optimizer inlines — recoverable by the paper's Section 3.3
    count-signature heuristic because the single call site preserves
    its execution counts.
    """
    outer_trips = rng.randint(8, 24)
    n_mix = rng.randint(2, min(4, len(kernels)))
    chosen = rng.sample(range(len(kernels)), n_mix)
    body: List[Statement] = []
    extra: List[Procedure] = []
    per_iter_cost = 0
    for kernel_index in chosen:
        reps = rng.randint(1, 3)
        for rep in range(reps):
            body.append(Call(f"s{index}_call_k{kernel_index}_{rep}",
                             callee=f"kern_{kernel_index}"))
        per_iter_cost += reps * kernels[kernel_index].cost
    if rng.random() < 0.5:
        instr = rng.randint(60, 160)
        local_behavior = _pick_behavior(rng, spec)
        body.append(
            Compute(
                f"stage{index}_local",
                instructions=instr,
                behavior=local_behavior,
                stream=registry.register(f"stage{index}_local_data",
                                         local_behavior),
            )
        )
        per_iter_cost += instr
    if rng.random() < 0.4:
        helper_trips = rng.randrange(31, 97, 2)  # odd => never unrollable
        helper_instr = rng.randint(40, 110)
        helper_behavior = _pick_behavior(rng, spec)
        helper = Procedure(
            name=f"stage{index}_helper",
            body=(
                Loop(
                    f"stage{index}_helper_loop",
                    trips=helper_trips,
                    body=(
                        Compute(
                            f"stage{index}_helper_kernel",
                            instructions=helper_instr,
                            behavior=helper_behavior,
                            stream=registry.register(
                                f"stage{index}_helper_data",
                                helper_behavior,
                            ),
                        ),
                    ),
                    unrollable=False,
                    splittable=False,
                ),
            ),
            inlinable=True,
        )
        extra.append(helper)
        body.append(
            Call(f"s{index}_call_helper", callee=helper.name)
        )
        per_iter_cost += helper_trips * helper_instr
    proc = Procedure(
        name=f"stage_{index}",
        body=(
            Loop(
                f"stage{index}_outer",
                trips=outer_trips,
                body=tuple(body),
                unrollable=False,
                splittable=False,
            ),
        ),
        inlinable=False,
    )
    return _StageDef(
        proc=proc,
        cost=outer_trips * per_iter_cost,
        extra_procs=tuple(extra),
    )


def _make_applu_solver(
    rng: random.Random, spec: BenchmarkSpec, registry: _StreamRegistry
) -> Tuple[List[Procedure], _StageDef, int]:
    """Build applu's solver stage and its five PDE procedures.

    The five procedures have *identical* loop trip counts and call
    counts, are all inlinable, and their loops are splittable. After
    optimization there is not enough structure left to map them (the
    paper's Section 5.1), so the solver body contains no mappable
    markers and VLI intervals grow to the size of a solver iteration.
    """
    pde_trips = 230
    pde_procs: List[Procedure] = []
    per_pde_cost = 0
    for p in range(5):
        instr_a = 120
        instr_b = 100
        jac_behavior = _pick_behavior(rng, spec)
        rhs_behavior = _pick_behavior(rng, spec)
        body: Tuple[Statement, ...] = (
            Loop(
                f"pde{p}_loop",
                trips=pde_trips,
                body=(
                    Compute(f"pde{p}_jac", instructions=instr_a,
                            behavior=jac_behavior,
                            stream=registry.register(f"pde{p}_jac_data",
                                                     jac_behavior)),
                    Compute(f"pde{p}_rhs", instructions=instr_b,
                            behavior=rhs_behavior,
                            stream=registry.register(f"pde{p}_rhs_data",
                                                     rhs_behavior)),
                ),
                unrollable=False,
                splittable=True,
            ),
        )
        pde_procs.append(Procedure(name=f"pde_{p}", body=body, inlinable=True))
        per_pde_cost = pde_trips * (instr_a + instr_b)
    solver_trips = 5
    solver_body: List[Statement] = [
        Call(f"solver_call_pde{p}", callee=f"pde_{p}") for p in range(5)
    ]
    local_behavior = _pick_behavior(rng, spec)
    solver_body.append(
        Compute("solver_local", instructions=120,
                behavior=local_behavior,
                stream=registry.register("solver_local_data",
                                         local_behavior))
    )
    solver = Procedure(
        name="solver",
        body=(
            Loop(
                "solver_outer",
                trips=solver_trips,
                body=tuple(solver_body),
                unrollable=False,
                splittable=False,
            ),
        ),
        inlinable=False,
    )
    cost = solver_trips * (5 * per_pde_cost + 120)
    return pde_procs, _StageDef(proc=solver, cost=cost), cost


def _estimate_source_instructions(
    stages: List[_StageDef], repeats: int, overhead: int
) -> int:
    return repeats * sum(stage.cost for stage in stages) + overhead


def _rescale_kernel_instructions(
    kernels: List[_KernelDef], factor: float
) -> List[_KernelDef]:
    """Scale kernel compute sizes by ``factor`` (clamped) to hit a target."""
    rescaled: List[_KernelDef] = []
    for kernel in kernels:
        loop = kernel.proc.body[0]
        assert isinstance(loop, Loop)
        new_computes = []
        new_instrs = []
        for stmt in loop.body:
            assert isinstance(stmt, Compute)
            instr = int(round(stmt.instructions * factor))
            instr = max(24, min(520, instr))
            new_instrs.append(instr)
            new_computes.append(
                Compute(stmt.name, instructions=instr, behavior=stmt.behavior,
                        stream=stmt.stream)
            )
        new_loop = Loop(
            loop.name,
            trips=loop.trips,
            body=tuple(new_computes),
            input_scaled=loop.input_scaled,
            unrollable=loop.unrollable,
            splittable=loop.splittable,
        )
        proc = Procedure(name=kernel.proc.name, body=(new_loop,),
                         inlinable=kernel.proc.inlinable)
        rescaled.append(
            _KernelDef(proc=proc, cost=_kernel_cost(loop.trips, new_instrs))
        )
    return rescaled


def build_benchmark(name: str) -> Program:
    """Construct (deterministically) the named benchmark program.

    Raises :class:`~repro.errors.ProgramError` for unknown names. The
    returned program is finalized: locations and stream ids are assigned
    and the call graph is validated.
    """
    if name not in BENCHMARK_SPECS:
        known = ", ".join(benchmark_names())
        raise ProgramError(f"unknown benchmark {name!r}; known: {known}")
    spec = BENCHMARK_SPECS[name]
    rng = random.Random(spec.seed)

    kernel_registry = _StreamRegistry()
    kernels = [
        _make_kernel(rng, spec, j, kernel_registry)
        for j in range(spec.n_kernels)
    ]

    def build_stages(
        kernel_defs: List[_KernelDef],
    ) -> Tuple[List[_StageDef], _StreamRegistry]:
        # A fixed derived seed keeps the stage *structure* identical
        # across the pre- and post-rescaling construction passes. A
        # fresh registry per pass avoids duplicate init streams.
        local_rng = random.Random(spec.seed * 7919 + 13)
        stage_registry = _StreamRegistry()
        stages = [
            _make_stage(local_rng, spec, i, kernel_defs, stage_registry)
            for i in range(spec.n_stages)
        ]
        return stages, stage_registry

    stages, stage_registry = build_stages(kernels)

    extra_procs: List[Procedure] = []
    overhead = 400  # init + final computes
    applu_cost = 0
    applu_registry = _StreamRegistry()
    if spec.applu_hazard:
        pde_procs, solver_stage, applu_cost = _make_applu_solver(
            rng, spec, applu_registry
        )
        extra_procs.extend(pde_procs)
        stages.append(solver_stage)

    target = int(spec.target_minstr * 1_000_000)
    estimate = _estimate_source_instructions(stages, spec.repeats, overhead)
    # The applu solver's cost is pinned by the hazard design; rescale only
    # the shared kernels to close the gap.
    tunable = estimate - spec.repeats * applu_cost
    wanted_tunable = target - spec.repeats * applu_cost
    if tunable > 0 and wanted_tunable > 0:
        factor = wanted_tunable / tunable
        kernels = _rescale_kernel_instructions(kernels, factor)
        stages, stage_registry = build_stages(kernels)
        if spec.applu_hazard:
            stages.append(solver_stage)

    main_body: List[Statement] = [
        Compute("init", instructions=200,
                behavior=_pick_behavior(rng, spec)),
        Loop(
            "main_loop",
            trips=spec.repeats,
            input_scaled=True,
            body=tuple(
                Call(f"main_call_stage{i}", callee=stage.proc.name)
                for i, stage in enumerate(stages)
            ),
            unrollable=False,
            splittable=False,
        ),
        Compute("final", instructions=200,
                behavior=_pick_behavior(rng, spec)),
    ]
    main = Procedure(name="main", body=tuple(main_body), inlinable=False)

    procedures: Dict[str, Procedure] = {"main": main}
    for kernel in kernels:
        procedures[kernel.proc.name] = kernel.proc
    for stage in stages:
        procedures[stage.proc.name] = stage.proc
        for proc in stage.extra_procs:
            procedures[proc.name] = proc
    for proc in extra_procs:
        procedures[proc.name] = proc

    program = Program(name=name, procedures=procedures, entry="main")
    return finalize_program(program)


def build_suite(
    names: Optional[Tuple[str, ...]] = None,
) -> Dict[str, Program]:
    """Build all (or the named subset of) benchmarks."""
    chosen = names if names is not None else benchmark_names()
    return {name: build_benchmark(name) for name in chosen}


def estimate_source_instructions(
    program: Program, program_input: ProgramInput = REF_INPUT
) -> int:
    """Source-level dynamic instruction estimate (compiler-neutral).

    Walks the IR, multiplying compute sizes by enclosing trip counts.
    Used by sizing tests and the experiment runner's sanity checks.
    """
    memo: Dict[str, int] = {}

    def body_cost(body: Tuple[Statement, ...]) -> int:
        total = 0
        for stmt in body:
            if isinstance(stmt, Compute):
                total += stmt.instructions
            elif isinstance(stmt, Loop):
                trips = program_input.resolve_trips(stmt.trips, stmt.input_scaled)
                total += trips * body_cost(stmt.body)
            elif isinstance(stmt, Call):
                total += proc_cost(stmt.callee)
        return total

    def proc_cost(name: str) -> int:
        if name not in memo:
            memo[name] = body_cost(program.procedures[name].body)
        return memo[name]

    return proc_cost(program.entry)
