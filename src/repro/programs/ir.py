"""Source-level intermediate representation of a benchmark program.

A :class:`Program` is a set of :class:`Procedure` definitions with a
designated entry procedure. Procedure bodies are trees of statements:

* :class:`Compute` — a straight-line kernel: a fixed number of
  instructions per execution plus a memory behaviour;
* :class:`Loop` — a counted loop with a statement body; trip counts may
  scale with the program input;
* :class:`Call` — a call to another procedure.

The IR is the "source code" of the study: the compiler lowers it to one
:class:`~repro.compilation.binary.Binary` per target, and every source
construct carries a :class:`SourceLocation` so that debug-line matching
(the paper's Section 3.2.2) has real line numbers to work with.

Programs are immutable. :func:`finalize_program` assigns source locations
(a deterministic line numbering over a virtual source file), resolves
kernel data-stream identities, and validates the call graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import ProgramError
from repro.programs.behaviors import MemoryBehavior


@dataclass(frozen=True)
class SourceLocation:
    """A position in the program's (virtual) source file."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass(frozen=True)
class Statement:
    """Base class for IR statements. Use the concrete subclasses.

    ``origin_procedure`` is set by the optimizer on statements that were
    inlined from another procedure. It is ground truth for tests; the
    cross-binary matcher never sees it (inlining clobbers the debug
    locations instead, as with real compilers).
    """

    name: str
    location: Optional[SourceLocation] = field(default=None, kw_only=True)
    origin_procedure: Optional[str] = field(default=None, kw_only=True)


@dataclass(frozen=True)
class Compute(Statement):
    """A straight-line compute kernel.

    ``instructions`` is the kernel's source-level work per execution; the
    compiler scales it per target (unoptimized code executes more
    instructions for the same source work). ``stream`` optionally names
    the data region the kernel touches so multiple kernels can share
    data; unnamed kernels get a private region. ``stream_id`` is resolved
    by :func:`finalize_program`.
    """

    instructions: int = 100
    behavior: Optional[MemoryBehavior] = None
    stream: Optional[str] = None
    stream_id: Optional[int] = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ProgramError(
                f"compute {self.name!r}: instructions must be positive, "
                f"got {self.instructions}"
            )


@dataclass(frozen=True)
class Loop(Statement):
    """A counted loop over a statement body.

    ``trips`` is the base trip count, resolved against the program input
    by :meth:`repro.programs.inputs.ProgramInput.resolve_trips` when
    ``input_scaled`` is true. ``unrollable``/``splittable`` gate which
    optimizer transformations may touch this loop, letting the suite
    construct the paper's mappable and unmappable cases deliberately.
    """

    trips: int = 1
    body: Tuple[Statement, ...] = ()
    input_scaled: bool = False
    unrollable: bool = True
    splittable: bool = True
    unroll_factor: int = field(default=1, kw_only=True)
    split_index: int = field(default=0, kw_only=True)

    def __post_init__(self) -> None:
        if self.trips < 1:
            raise ProgramError(
                f"loop {self.name!r}: trips must be >= 1, got {self.trips}"
            )
        if not self.body:
            raise ProgramError(f"loop {self.name!r}: body must not be empty")


@dataclass(frozen=True)
class Call(Statement):
    """A call to another procedure by name."""

    callee: str = ""

    def __post_init__(self) -> None:
        if not self.callee:
            raise ProgramError(f"call {self.name!r}: callee must be named")


@dataclass(frozen=True)
class Procedure:
    """A named procedure with a statement body."""

    name: str
    body: Tuple[Statement, ...]
    inlinable: bool = True
    location: Optional[SourceLocation] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("procedure must be named")
        if not self.body:
            raise ProgramError(f"procedure {self.name!r}: body must not be empty")


@dataclass(frozen=True)
class Program:
    """A whole program: procedures plus an entry point."""

    name: str
    procedures: Mapping[str, Procedure]
    entry: str = "main"
    source_file: Optional[str] = None
    finalized: bool = False

    def __post_init__(self) -> None:
        if self.entry not in self.procedures:
            raise ProgramError(
                f"program {self.name!r}: entry {self.entry!r} is not defined"
            )
        for key, proc in self.procedures.items():
            if key != proc.name:
                raise ProgramError(
                    f"program {self.name!r}: procedure key {key!r} does not "
                    f"match procedure name {proc.name!r}"
                )

    @property
    def entry_procedure(self) -> Procedure:
        return self.procedures[self.entry]


def iter_statements(body: Tuple[Statement, ...]) -> Iterator[Statement]:
    """Depth-first, pre-order walk of a statement tree."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Loop):
            yield from iter_statements(stmt.body)


def iter_program_statements(program: Program) -> Iterator[Tuple[str, Statement]]:
    """Walk every statement of every procedure as ``(proc name, stmt)``."""
    for proc in program.procedures.values():
        for stmt in iter_statements(proc.body):
            yield proc.name, stmt


def call_graph(program: Program) -> Dict[str, Tuple[str, ...]]:
    """Direct-callee adjacency of the program's procedures."""
    graph: Dict[str, Tuple[str, ...]] = {}
    for name, proc in program.procedures.items():
        callees = []
        for stmt in iter_statements(proc.body):
            if isinstance(stmt, Call):
                callees.append(stmt.callee)
        graph[name] = tuple(callees)
    return graph


def reachable_procedures(program: Program) -> Tuple[str, ...]:
    """Procedures reachable from the entry, in deterministic DFS order."""
    graph = call_graph(program)
    seen = []
    seen_set = set()
    stack = [program.entry]
    while stack:
        name = stack.pop()
        if name in seen_set:
            continue
        seen.append(name)
        seen_set.add(name)
        # Push in reverse so DFS visits callees in call order.
        for callee in reversed(graph.get(name, ())):
            if callee not in seen_set:
                stack.append(callee)
    return tuple(seen)


def _check_calls_resolve(program: Program) -> None:
    for proc_name, stmt in iter_program_statements(program):
        if isinstance(stmt, Call) and stmt.callee not in program.procedures:
            raise ProgramError(
                f"program {program.name!r}: procedure {proc_name!r} calls "
                f"undefined procedure {stmt.callee!r}"
            )


def _check_acyclic(program: Program) -> None:
    graph = call_graph(program)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def visit(name: str, path: Tuple[str, ...]) -> None:
        color[name] = GRAY
        for callee in graph[name]:
            if color[callee] == GRAY:
                cycle = " -> ".join(path + (name, callee))
                raise ProgramError(
                    f"program {program.name!r}: recursive call cycle {cycle}"
                )
            if color[callee] == WHITE:
                visit(callee, path + (name,))
        color[name] = BLACK

    visit(program.entry, ())


class _Finalizer:
    """Assigns locations and stream ids over a single virtual source file."""

    def __init__(self, source_file: str) -> None:
        self._file = source_file
        self._line = 0
        self._stream_ids: Dict[str, int] = {}
        self._next_stream = 0

    def _next_line(self) -> SourceLocation:
        self._line += 1
        return SourceLocation(file=self._file, line=self._line)

    def _stream_id_for(self, compute: Compute) -> int:
        if compute.stream is not None:
            if compute.stream not in self._stream_ids:
                self._stream_ids[compute.stream] = self._next_stream
                self._next_stream += 1
            return self._stream_ids[compute.stream]
        stream_id = self._next_stream
        self._next_stream += 1
        return stream_id

    def finalize_body(self, body: Tuple[Statement, ...]) -> Tuple[Statement, ...]:
        out = []
        for stmt in body:
            location = self._next_line()
            if isinstance(stmt, Compute):
                out.append(
                    replace(
                        stmt,
                        location=location,
                        stream_id=self._stream_id_for(stmt),
                    )
                )
            elif isinstance(stmt, Loop):
                inner = self.finalize_body(stmt.body)
                # The closing brace occupies a line of its own, like real
                # source; this keeps loop header lines unique.
                self._line += 1
                out.append(replace(stmt, location=location, body=inner))
            elif isinstance(stmt, Call):
                out.append(replace(stmt, location=location))
            else:  # pragma: no cover - Statement is abstract by convention
                raise ProgramError(f"unknown statement type {type(stmt).__name__}")
        return tuple(out)

    def finalize_procedure(self, proc: Procedure) -> Procedure:
        location = self._next_line()
        body = self.finalize_body(proc.body)
        self._line += 1  # closing brace
        return replace(proc, location=location, body=body)


def finalize_program(program: Program) -> Program:
    """Validate a program and assign locations and stream identities.

    Returns a new :class:`Program` in which every statement carries a
    distinct :class:`SourceLocation` over a single virtual source file,
    and every :class:`Compute` has a resolved ``stream_id``. Validation
    rejects undefined callees and recursion.
    """
    if program.finalized:
        return program
    _check_calls_resolve(program)
    _check_acyclic(program)
    source_file = program.source_file or f"{program.name}.c"
    finalizer = _Finalizer(source_file)
    procedures: Dict[str, Procedure] = {}
    for name, proc in program.procedures.items():
        procedures[name] = finalizer.finalize_procedure(proc)
    return replace(
        program,
        procedures=procedures,
        source_file=source_file,
        finalized=True,
    )


@dataclass(frozen=True)
class StaticStatistics:
    """Static counts over a program's IR."""

    procedures: int
    loops: int
    computes: int
    calls: int
    max_loop_depth: int


def static_statistics(program: Program) -> StaticStatistics:
    """Compute static IR statistics (used by tests and reporting)."""
    loops = computes = calls = 0
    max_depth = 0

    def visit(body: Tuple[Statement, ...], depth: int) -> None:
        nonlocal loops, computes, calls, max_depth
        for stmt in body:
            if isinstance(stmt, Loop):
                loops += 1
                max_depth = max(max_depth, depth + 1)
                visit(stmt.body, depth + 1)
            elif isinstance(stmt, Compute):
                computes += 1
            elif isinstance(stmt, Call):
                calls += 1

    for proc in program.procedures.values():
        visit(proc.body, 0)
    return StaticStatistics(
        procedures=len(program.procedures),
        loops=loops,
        computes=computes,
        calls=calls,
        max_loop_depth=max_depth,
    )
