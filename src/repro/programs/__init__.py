"""Synthetic SPEC2000-like program substrate.

The paper evaluates Cross Binary SimPoint on SPEC CPU2000 binaries, which
are not available offline. This package provides the substitution documented
in DESIGN.md: a source-level intermediate representation
(:mod:`repro.programs.ir`) and a suite of 21 structured, seeded programs
(:mod:`repro.programs.suite`) named after the paper's benchmarks. Each
program has procedures, nested loops, and compute kernels with explicit
memory behaviours (:mod:`repro.programs.behaviors`), giving the compiler,
profilers, and simulator exactly the structure the paper's techniques
operate on.
"""

from repro.programs.behaviors import AccessKind, MemoryBehavior
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    SourceLocation,
    Statement,
)
from repro.programs.suite import benchmark_names, build_benchmark, build_suite

__all__ = [
    "AccessKind",
    "MemoryBehavior",
    "ProgramInput",
    "REF_INPUT",
    "Call",
    "Compute",
    "Loop",
    "Procedure",
    "Program",
    "SourceLocation",
    "Statement",
    "benchmark_names",
    "build_benchmark",
    "build_suite",
]
