"""Memory behaviour archetypes for compute kernels.

Each :class:`~repro.programs.ir.Compute` statement carries a
:class:`MemoryBehavior` describing the address stream it generates per
execution. The CMP$im-style simulator turns these into concrete cache
accesses (:mod:`repro.cmpsim.memory`), and the compiler scales footprints
with the target's pointer width (:mod:`repro.compilation.lowering`).

The archetypes mirror the behaviour classes that dominate SPEC CPU2000:

* ``STREAM`` — unit/fixed-stride sweeps over arrays (swim, applu, ...)
* ``BLOCKED`` — tiled reuse within a block that fits a cache level
  (sixtrack, mesa inner kernels)
* ``RANDOM`` — uniformly distributed references over a footprint
  (gcc hash tables, vortex object store)
* ``POINTER_CHASE`` — dependent pointer walks (mcf, twolf netlists);
  footprint scales strongly with pointer width
* ``STACK`` — small, hot, reused region (always near-100% L1 hits);
  unoptimized code adds a lot of this traffic
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProgramError


class AccessKind(enum.Enum):
    """The shape of a kernel's address stream."""

    STREAM = "stream"
    BLOCKED = "blocked"
    RANDOM = "random"
    POINTER_CHASE = "pointer_chase"
    STACK = "stack"


@dataclass(frozen=True)
class MemoryBehavior:
    """Per-execution memory behaviour of a compute kernel.

    Parameters
    ----------
    kind:
        Address stream shape; see :class:`AccessKind`.
    footprint:
        Bytes of the data region the kernel touches, at the 32-bit
        baseline. The compiler scales the pointer-dependent fraction
        when targeting a 64-bit ISA.
    refs_per_exec:
        Number of memory references issued each time the kernel's basic
        block executes.
    stride:
        Byte stride between consecutive references for ``STREAM`` and
        ``BLOCKED`` kinds. Ignored for the other kinds.
    pointer_fraction:
        Fraction of ``footprint`` made of pointers, which doubles in size
        on a 64-bit target (the paper's IA32 vs Intel64 scenario).
    read_fraction:
        Fraction of references that are reads; the remainder are writes
        (relevant for write-back dirty evictions).
    """

    kind: AccessKind
    footprint: int
    refs_per_exec: int
    stride: int = 64
    pointer_fraction: float = 0.0
    read_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.footprint <= 0:
            raise ProgramError(f"footprint must be positive, got {self.footprint}")
        if self.refs_per_exec < 0:
            raise ProgramError(
                f"refs_per_exec must be non-negative, got {self.refs_per_exec}"
            )
        if self.stride <= 0:
            raise ProgramError(f"stride must be positive, got {self.stride}")
        if not 0.0 <= self.pointer_fraction <= 1.0:
            raise ProgramError(
                f"pointer_fraction must be in [0, 1], got {self.pointer_fraction}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ProgramError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )

    def scaled_footprint(self, pointer_bytes: int) -> int:
        """Footprint in bytes when compiled for ``pointer_bytes``-wide pointers.

        The 32-bit baseline uses 4-byte pointers; the pointer-dependent
        fraction of the footprint grows proportionally with pointer width.
        """
        if pointer_bytes <= 0:
            raise ProgramError(f"pointer_bytes must be positive, got {pointer_bytes}")
        growth = self.pointer_fraction * (pointer_bytes / 4.0 - 1.0)
        return max(1, int(round(self.footprint * (1.0 + growth))))


def streaming(footprint: int, refs_per_exec: int = 4, stride: int = 64) -> MemoryBehavior:
    """A fixed-stride array sweep (classic FP loop nest behaviour)."""
    return MemoryBehavior(
        kind=AccessKind.STREAM,
        footprint=footprint,
        refs_per_exec=refs_per_exec,
        stride=stride,
        pointer_fraction=0.0,
        read_fraction=0.75,
    )


def blocked(
    footprint: int, refs_per_exec: int = 4, stride: int = 16
) -> MemoryBehavior:
    """Tiled reuse: references stay within a block-sized window."""
    return MemoryBehavior(
        kind=AccessKind.BLOCKED,
        footprint=footprint,
        refs_per_exec=refs_per_exec,
        stride=stride,
        pointer_fraction=0.0,
        read_fraction=0.8,
    )


def random_access(
    footprint: int, refs_per_exec: int = 3, pointer_fraction: float = 0.3
) -> MemoryBehavior:
    """Uniformly distributed references (hash tables, symbol tables)."""
    return MemoryBehavior(
        kind=AccessKind.RANDOM,
        footprint=footprint,
        refs_per_exec=refs_per_exec,
        pointer_fraction=pointer_fraction,
        read_fraction=0.85,
    )


def pointer_chasing(footprint: int, refs_per_exec: int = 3) -> MemoryBehavior:
    """Dependent pointer walks; footprint is dominated by pointers."""
    return MemoryBehavior(
        kind=AccessKind.POINTER_CHASE,
        footprint=footprint,
        refs_per_exec=refs_per_exec,
        pointer_fraction=0.9,
        read_fraction=0.95,
    )


def stack_local(refs_per_exec: int = 2) -> MemoryBehavior:
    """Hot stack traffic: a tiny region that lives in the L1."""
    return MemoryBehavior(
        kind=AccessKind.STACK,
        footprint=4096,
        refs_per_exec=refs_per_exec,
        stride=8,
        pointer_fraction=0.0,
        read_fraction=0.6,
    )
