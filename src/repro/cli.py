"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the synthetic benchmark suite.
``summary <benchmark>``
    Run one benchmark through both pipelines and print its per-binary
    estimates and speedup errors.
``pinpoints <benchmark> [--target 32u] [--output DIR]``
    Run the per-binary PinPoints tool chain and write
    ``.simpoints``/``.weights`` files.
``regions <benchmark> [--output DIR]``
    Run the cross-binary pipeline and write the regions file.
``figures [--benchmarks a,b,c]``
    Regenerate every figure and table of the paper (all 21 benchmarks
    by default; takes a couple of minutes).
``inspect <manifest.json>``
    Pretty-print a run manifest: stage timings, cache hit rates,
    chosen clusterings, error tables, bias tables, histogram
    quantiles.
``ledger log|list|diff|check``
    Cross-run observability: append manifests to an append-only JSONL
    run ledger, list logged runs, diff two runs field by field, and
    gate on accuracy/performance drift (``check`` exits non-zero when
    an error table worsens, a chosen k flips, a stage/cache metric
    degrades beyond tolerance, or job failure/retry rates exceed their
    bounds — see ``repro ledger check --help``).
``submit <benchmark> [--sizes N,N,...] [--queue DIR]``
    Queue benchmark experiment jobs (one per interval size) on the
    persistent file-backed work queue. Submission is idempotent: a
    cell whose successful receipt already exists is not queued again.
``serve [--queue DIR] [--workers N]``
    Drain the queue with a pool of worker processes. Workers that die
    mid-job lose their lease; their jobs are reclaimed and retried up
    to the queue's attempt budget. Exits non-zero if any job ended
    failed or exhausted.
``jobs [--queue DIR]``
    Show the queue's pending/active tallies and its receipts.
``top [--queue DIR] [--once] [--json] [--interval S]``
    Live fleet dashboard over a queue: pending depth, active leases
    with ages, live/stale workers (journal heartbeats), throughput,
    failure/retry rates, and queue-wait/execution/lease-age
    quantiles. Refreshes every ``--interval`` seconds until
    interrupted; ``--once`` prints one frame, ``--json`` one
    machine-readable snapshot (for scripting and CI).
``report sweep [--queue DIR] [--benchmark NAME]``
    Receipt-driven sweep progress: every benchmark cell the spool has
    seen, joined against its receipt — completion, attempts, wall
    seconds, and the paper's per-interval-size error columns (chosen
    k, average FLI/VLI CPI error) loaded from finished artifacts.

Queue commands accept ``--events`` (env ``REPRO_EVENTS``) to journal
every queue/worker/sweep transition to ``<queue>/events.jsonl`` as
``repro.events/v1`` lines — what ``top`` uses for worker liveness and
queue-wait quantiles. Disabled by default at zero cost.

Matching
--------
Every command accepts ``--match-confidence T`` (env
``REPRO_MATCH_CONFIDENCE``): the fuzzy marker-match acceptance
threshold. At the default 1.0 only the exact matching stages run and
results are bit-identical to earlier versions; below 1.0 the pipeline
degrades gracefully on inlining-renamed or compiler-decorated symbols
by accepting confidence-scored fuzzy matches at or above ``T``.

Caching
-------
Every command accepts ``--cache-dir``/``--no-cache`` for the on-disk
profile cache, ``--no-sim-cache`` (env ``REPRO_NO_SIM_CACHE``) to
disable content-keyed reuse of detailed-simulation results, and
``--no-clustering-cache`` (env ``REPRO_NO_CLUSTERING_CACHE``) to
disable content-keyed reuse of chosen clusterings, each while keeping
profile caching. Neither kind of reuse ever changes results — outputs
are bit-identical with the cache hot, cold, or disabled.

Observability
-------------
Every command accepts ``--trace-out FILE`` (env ``REPRO_TRACE_OUT``)
and ``--metrics-out FILE`` (env ``REPRO_METRICS_OUT``). With
``--trace-out`` the run also writes ``manifest.json`` next to the
trace: config fingerprint, git describe, per-stage wall times, cache
statistics, chosen k and BIC trace per binary, and final error tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS, target_by_label
from repro.experiments.figures import (
    figure1_number_of_simpoints,
    figure2_interval_sizes,
    figure3_cpi_error,
    figure4_speedup_error_same_platform,
    figure5_speedup_error_cross_platform,
    pair_speedup_error,
)
from repro.experiments.reporting import (
    render_figure,
    render_phase_comparison,
    render_table1,
)
from repro.experiments.runner import run_benchmark, run_suite
from repro.experiments.tables import (
    table1_configuration,
    table2_gcc_phases,
    table3_apsi_phases,
)
from repro.pinpoints.toolchain import (
    generate_cross_binary_pinpoints,
    generate_pinpoints,
)
from repro.programs.suite import (
    BENCHMARK_SPECS,
    benchmark_names,
    build_benchmark,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'benchmark':<10} {'class':<12} {'stages':>6} {'kernels':>7}")
    print("-" * 40)
    for name in benchmark_names():
        spec = BENCHMARK_SPECS[name]
        print(
            f"{name:<10} {spec.workload_class.value:<12} "
            f"{spec.n_stages:>6} {spec.n_kernels:>7}"
        )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    run = run_benchmark(args.benchmark)
    print(f"== {args.benchmark} ==")
    match = run.cross.match_report
    print(
        f"mappable points: {run.cross.marker_set.n_points} "
        f"({match.procedures_matched} procs, "
        f"{match.loop_entries_matched} loop entries, "
        f"{match.loop_branches_matched} branches, "
        f"{match.loops_recovered_by_signature} recovered, "
        f"{match.loops_dropped_ambiguous} ambiguous)"
    )
    print(f"mapped intervals: {len(run.cross.intervals)}, "
          f"k={run.cross.simpoint.k}\n")
    header = (f"{'binary':<6} {'instructions':>13} {'true CPI':>9} "
              f"{'FLI est':>8} {'FLI err':>8} {'VLI est':>8} {'VLI err':>8}")
    print(header)
    print("-" * len(header))
    for label in (target.label for target in STANDARD_TARGETS):
        outcome = run.outcome(label)
        fli = outcome.fli_estimate
        vli = outcome.vli_estimate
        print(
            f"{label:<6} {outcome.stats.instructions:>13,} "
            f"{outcome.true_cpi:>9.3f} {fli.estimated_cpi:>8.3f} "
            f"{fli.cpi_error:>8.2%} {vli.estimated_cpi:>8.3f} "
            f"{vli.cpi_error:>8.2%}"
        )
    print("\nspeedup errors:")
    for baseline, improved in (("32u", "32o"), ("64u", "64o"),
                               ("32u", "64u"), ("32o", "64o")):
        fli = pair_speedup_error(run, "fli", baseline, improved)
        vli = pair_speedup_error(run, "vli", baseline, improved)
        print(
            f"  {baseline}->{improved}: true {fli.true_speedup:.3f} | "
            f"FLI err {fli.error:.2%} | VLI err {vli.error:.2%}"
        )
    if args.detail:
        from repro.experiments.reporting import render_simulation_stats

        for label in (target.label for target in STANDARD_TARGETS):
            outcome = run.outcome(label)
            print(f"\nmemory system, {outcome.binary_name}:")
            print(render_simulation_stats(outcome.stats))
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import render_phase_timeline

    run = run_benchmark(args.benchmark)
    vli_weights = run.cross.weights_for(run.cross.primary_name)
    print(
        render_phase_timeline(
            run.cross.simpoint.labels,
            weights=vli_weights,
            title=f"{args.benchmark}: mappable (VLI) phases, shared by "
                  f"all binaries",
        )
    )
    for label in (target.label for target in STANDARD_TARGETS):
        outcome = run.outcome(label)
        weights = {
            point.cluster: point.weight
            for point in outcome.fli_simpoint.points
        }
        print()
        print(
            render_phase_timeline(
                outcome.fli_simpoint.labels,
                weights=weights,
                title=f"{args.benchmark}/{label}: per-binary (FLI) phases",
            )
        )
    return 0


def _cmd_pinpoints(args: argparse.Namespace) -> int:
    program = build_benchmark(args.benchmark)
    target = target_by_label(args.target)
    binaries = compile_standard_binaries(program, (target,))
    package = generate_pinpoints(
        binaries[target],
        interval_size=args.interval_size,
        output_dir=args.output,
    )
    print(f"{package.binary_name}: {len(package.intervals)} intervals, "
          f"{package.simpoint.n_points} simulation points")
    if package.simpoints_path:
        print(f"wrote {package.simpoints_path}")
        print(f"wrote {package.weights_path}")
    return 0


def _cmd_regions(args: argparse.Namespace) -> int:
    program = build_benchmark(args.benchmark)
    binaries = compile_standard_binaries(program)
    ordered = [binaries[target] for target in STANDARD_TARGETS]
    result, path = generate_cross_binary_pinpoints(
        ordered, output_dir=args.output
    )
    print(f"{args.benchmark}: {result.marker_set.n_points} mappable "
          f"points, {len(result.mapped_points)} regions")
    if path:
        print(f"wrote {path}")
    if args.markers and args.output:
        from pathlib import Path

        from repro.pinpoints.markers_io import write_marker_set

        markers_path = Path(args.output) / f"{args.benchmark}.markers"
        write_marker_set(markers_path, result.marker_set)
        print(f"wrote {markers_path}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FileFormatError
    from repro.observability.inspect import render_manifest
    from repro.observability.manifest import load_manifest

    try:
        manifest = load_manifest(args.manifest)
    except FileFormatError as exc:
        # One clear line, not a traceback — schema mismatches and
        # corrupt files are user-facing conditions here.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        # The validated (and, for v1 inputs, upgraded) document — the
        # machine-readable twin of the rendered view.
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(render_manifest(manifest))
    return 0


def _resolve_ledger_run(ledger, reference: str):
    """A diff/check operand: a manifest path or a ledger run id."""
    from pathlib import Path

    from repro.errors import FileFormatError
    from repro.observability.ledger import entry_from_manifest
    from repro.observability.manifest import load_manifest

    path = Path(reference)
    if path.exists():
        return entry_from_manifest(load_manifest(path), manifest_path=path)
    entry = ledger.entry(reference)  # raises with a clear message
    if entry.manifest_path and Path(entry.manifest_path).exists():
        # Prefer the full manifest (bias + histogram buckets survive).
        try:
            return entry_from_manifest(
                load_manifest(entry.manifest_path),
                manifest_path=entry.manifest_path,
            )
        except FileFormatError:
            pass  # fall back to the indexed record
    return entry


def _cmd_ledger(args: argparse.Namespace) -> int:
    from repro.errors import FileFormatError
    from repro.observability.diff import (
        check_drift,
        diff_runs,
        render_diff,
        render_violations,
        thresholds_from_options,
    )
    from repro.observability.ledger import (
        RunLedger,
        render_entries,
    )
    from repro.observability.manifest import load_manifest

    ledger = RunLedger(args.ledger)
    try:
        if args.ledger_command == "log":
            entry = ledger.log_path(args.manifest)
            print(
                f"logged run {entry.run_id} "
                f"(config {str(entry.config_fingerprint)[:12]}) "
                f"to {ledger.path}"
            )
            return 0
        if args.ledger_command == "list":
            entries = ledger.entries()
            if args.fingerprint:
                entries = [
                    entry
                    for entry in entries
                    if (entry.config_fingerprint or "").startswith(
                        args.fingerprint
                    )
                ]
            print(render_entries(entries))
            return 0
        if args.ledger_command == "diff":
            old = _resolve_ledger_run(ledger, args.old)
            new = _resolve_ledger_run(ledger, args.new)
            print(render_diff(diff_runs(old, new), changed_only=not args.all))
            return 0
        # check
        manifest = load_manifest(args.manifest)
        new = _resolve_ledger_run(ledger, args.manifest)
        if args.baseline:
            old = _resolve_ledger_run(ledger, args.baseline)
        else:
            old = ledger.baseline_for(
                manifest.get("config_fingerprint"),
                exclude_run_id=manifest["run_id"],
            )
            if old is None:
                print(
                    f"no baseline in {ledger.path} for config "
                    f"{str(manifest.get('config_fingerprint'))[:12]}; "
                    f"nothing to check against"
                )
                if args.log:
                    ledger.log_manifest(manifest, manifest_path=args.manifest)
                    print(f"logged run {manifest['run_id']} as the baseline")
                return 0
        thresholds = thresholds_from_options(vars(args))
        violations = check_drift(diff_runs(old, new), thresholds)
        print(f"baseline: {old.run_id}  candidate: {new.run_id}")
        print(render_violations(violations))
        if args.log and not violations:
            # A drifting run is never auto-logged: it must not become
            # the next run's baseline by accident.
            ledger.log_manifest(manifest, manifest_path=args.manifest)
            print(f"logged run {manifest['run_id']}")
        return 1 if violations else 0
    except FileFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _resolve_queue(args: argparse.Namespace):
    from repro.jobs.queue import JobQueue
    from repro.jobs.service import default_queue_root

    return JobQueue(
        args.queue or default_queue_root(),
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        events=getattr(args, "events", None),
    )


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.observability.status import queue_status, render_status

    queue = _resolve_queue(args)
    if args.json:
        print(json.dumps(queue_status(queue).to_payload(), sort_keys=True))
        return 0
    if args.once:
        print(render_status(queue_status(queue)))
        return 0
    try:
        while True:
            frame = render_status(queue_status(queue))
            # Clear screen + home, one whole frame per refresh.
            sys.stdout.write(f"\x1b[2J\x1b[H{frame}\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.jobs.service import render_sweep_report, sweep_report

    queue = _resolve_queue(args)
    report = sweep_report(
        queue, args.benchmark, load_errors=not args.no_errors
    )
    if args.json:
        print(json.dumps(report.to_payload(), sort_keys=True))
        return 0
    print(render_sweep_report(report))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.experiments.runner import ExperimentConfig
    from repro.jobs.service import submit_benchmark

    queue = _resolve_queue(args)
    sizes = (
        [int(size) for size in args.sizes.split(",")]
        if args.sizes
        else [ExperimentConfig().interval_size]
    )
    for size in sizes:
        config = ExperimentConfig(interval_size=size)
        job_id = submit_benchmark(
            queue, args.benchmark, config, retry=args.retry
        )
        receipt = queue.receipt(job_id)
        state = f"done ({receipt.status})" if receipt else "queued"
        print(
            f"{job_id[:12]}  {args.benchmark} interval_size={size}  "
            f"{state}"
        )
    print(f"queue: {queue.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.jobs.service import (
        ensure_default_executors,
        render_receipts,
    )
    from repro.jobs.worker import run_worker_pool

    ensure_default_executors()
    queue = _resolve_queue(args)
    run_worker_pool(queue, args.workers)
    receipts = queue.receipts()
    print(render_receipts(receipts))
    bad = [receipt for receipt in receipts if not receipt.ok]
    counts = queue.counts()
    print(
        f"\ndrained: {counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['exhausted']} exhausted"
    )
    return 1 if bad else 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.jobs.service import render_receipts

    queue = _resolve_queue(args)
    counts = queue.counts()
    print(
        f"queue: {queue.root}\n"
        f"pending: {counts['pending']}  active: {counts['active']}  "
        f"ok: {counts['ok']}  failed: {counts['failed']}  "
        f"exhausted: {counts['exhausted']}\n"
    )
    print(render_receipts(queue.receipts()))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.benchmarks:
        names: Sequence[str] = tuple(args.benchmarks.split(","))
    else:
        names = benchmark_names()
    runs = run_suite(names, progress=True)
    figures = [
        figure1_number_of_simpoints(runs),
        figure2_interval_sizes(runs),
        figure3_cpi_error(runs),
        figure4_speedup_error_same_platform(runs),
        figure5_speedup_error_cross_platform(runs),
    ]
    print()
    print(render_table1(table1_configuration()))
    for figure in figures:
        print()
        print(render_figure(figure))
    if "gcc" in runs:
        print()
        print(render_phase_comparison(table2_gcc_phases(run=runs["gcc"])))
    if "apsi" in runs:
        print()
        print(render_phase_comparison(table3_apsi_phases(run=runs["apsi"])))
    if args.json:
        from repro.experiments.serialize import (
            benchmark_run_to_dict,
            figure_to_dict,
            save_json,
        )

        payload = {
            "figures": {
                figure.figure: figure_to_dict(figure) for figure in figures
            },
            "benchmarks": {
                name: benchmark_run_to_dict(run)
                for name, run in runs.items()
            },
        }
        path = save_json(payload, args.json)
        print(f"\nwrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import (
        Verdict,
        render_validation,
        validate_reproduction,
    )

    if args.benchmarks:
        names: Sequence[str] = tuple(args.benchmarks.split(","))
    else:
        names = benchmark_names()
    runs = run_suite(names, progress=True)
    results = validate_reproduction(runs)
    print()
    print(render_validation(results))
    return 1 if any(r.verdict is Verdict.FAIL for r in results) else 0


def _add_runtime_flags(
    parser: argparse.ArgumentParser, *, suppress: bool = False
) -> None:
    """The global runtime flags, attachable before or after the
    subcommand. Subparser copies use SUPPRESS defaults so an absent
    flag never clobbers a value parsed at the top level."""
    default = argparse.SUPPRESS if suppress else None
    parser.add_argument(
        "--jobs", type=int, default=default, metavar="N",
        help="worker processes for per-binary fan-out "
             "(default: REPRO_JOBS or all cores; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=default, metavar="DIR",
        help="profile cache directory "
             "(default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="disable the on-disk profile cache",
    )
    parser.add_argument(
        "--no-sim-cache", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="disable content-keyed reuse of detailed-simulation "
             "results (env REPRO_NO_SIM_CACHE); results are "
             "bit-identical either way, only wall time changes",
    )
    parser.add_argument(
        "--no-clustering-cache", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="disable content-keyed reuse of chosen clusterings "
             "(env REPRO_NO_CLUSTERING_CACHE); results are "
             "bit-identical either way, only wall time changes",
    )
    parser.add_argument(
        "--match-confidence", type=float, default=default, metavar="T",
        help="fuzzy marker-match acceptance threshold in (0, 1] "
             "(default: REPRO_MATCH_CONFIDENCE or 1.0 = exact only); "
             "below 1.0 the matcher accepts confidence-scored fuzzy "
             "matches at or above T instead of failing on renamed "
             "symbols",
    )
    parser.add_argument(
        "--trace-out", default=default, metavar="FILE",
        help="write a structured JSON trace here and a run manifest "
             "(manifest.json) next to it (default: REPRO_TRACE_OUT)",
    )
    parser.add_argument(
        "--metrics-out", default=default, metavar="FILE",
        help="write the run's metric counters/histograms here as JSON "
             "(default: REPRO_METRICS_OUT)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross Binary Simulation Points (ISPASS 2007) "
                    "reproduction harness",
    )
    _add_runtime_flags(parser)
    common = argparse.ArgumentParser(add_help=False)
    _add_runtime_flags(common, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list the benchmark suite", parents=[common]
    )

    summary = sub.add_parser(
        "summary", help="one benchmark, both methods", parents=[common]
    )
    summary.add_argument("benchmark", choices=benchmark_names())
    summary.add_argument(
        "--detail", action="store_true",
        help="also print per-binary memory-system statistics",
    )

    phases = sub.add_parser(
        "phases", help="phase timelines (VLI shared + per-binary FLI)",
        parents=[common],
    )
    phases.add_argument("benchmark", choices=benchmark_names())

    pinpoints = sub.add_parser(
        "pinpoints", help="per-binary SimPoint files for one binary",
        parents=[common],
    )
    pinpoints.add_argument("benchmark", choices=benchmark_names())
    pinpoints.add_argument("--target", default="32u",
                           choices=[t.label for t in STANDARD_TARGETS])
    pinpoints.add_argument("--interval-size", type=int, default=100_000)
    pinpoints.add_argument("--output", default="pinpoints.out")

    regions = sub.add_parser(
        "regions", help="cross-binary regions file for one benchmark",
        parents=[common],
    )
    regions.add_argument("benchmark", choices=benchmark_names())
    regions.add_argument("--output", default="pinpoints.out")
    regions.add_argument(
        "--markers", action="store_true",
        help="also archive the matched marker set",
    )

    figures = sub.add_parser(
        "figures", help="regenerate every figure and table",
        parents=[common],
    )
    figures.add_argument(
        "--benchmarks",
        help="comma-separated subset (default: all 21)",
    )
    figures.add_argument(
        "--json",
        help="also write all figures and run summaries to this JSON file",
    )

    validate = sub.add_parser(
        "validate",
        help="check every paper claim against measured results",
        parents=[common],
    )
    validate.add_argument(
        "--benchmarks",
        help="comma-separated subset (default: all 21)",
    )

    inspect = sub.add_parser(
        "inspect", help="pretty-print a run manifest",
        parents=[common],
    )
    inspect.add_argument("manifest", help="path to a manifest.json")
    inspect.add_argument(
        "--json", action="store_true",
        help="emit the validated manifest as machine-readable JSON "
             "instead of the rendered view",
    )

    queue_common = argparse.ArgumentParser(add_help=False)
    queue_common.add_argument(
        "--queue", default=None, metavar="DIR",
        help="work-queue directory (default: REPRO_QUEUE or "
             "./repro-queue)",
    )
    queue_common.add_argument(
        "--lease-seconds", type=float, default=300.0, metavar="S",
        help="lease timeout before a dead worker's job is reclaimed "
             "(default 300)",
    )
    queue_common.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="executions allowed per job before it is marked "
             "exhausted (default 3)",
    )
    queue_common.add_argument(
        "--events", action="store_const", const=True, default=None,
        help="journal queue/worker lifecycle events to "
             "<queue>/events.jsonl (default: REPRO_EVENTS, else off)",
    )

    submit = sub.add_parser(
        "submit",
        help="queue benchmark experiment jobs for repro serve",
        parents=[common, queue_common],
    )
    submit.add_argument("benchmark", choices=benchmark_names())
    submit.add_argument(
        "--sizes", default=None, metavar="N,N,...",
        help="comma-separated interval sizes, one job per size "
             "(default: one job at the standard interval size)",
    )
    submit.add_argument(
        "--retry", action="store_true",
        help="requeue jobs whose previous attempt ended failed or "
             "exhausted (successful jobs are never re-run)",
    )

    serve = sub.add_parser(
        "serve",
        help="drain the work queue with a pool of worker processes",
        parents=[common, queue_common],
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: --jobs / REPRO_JOBS)",
    )

    jobs_cmd = sub.add_parser(
        "jobs",
        help="show queue status and job receipts",
        parents=[common, queue_common],
    )
    del jobs_cmd  # flags only; the handler reads the shared options

    top = sub.add_parser(
        "top",
        help="live fleet dashboard for a work queue",
        parents=[common, queue_common],
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit instead of refreshing",
    )
    top.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable status snapshot and exit",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between dashboard refreshes (default 2)",
    )

    report = sub.add_parser(
        "report",
        help="receipt-driven reports over a work queue",
        parents=[common],
    )
    rsub = report.add_subparsers(dest="report_command", required=True)
    report_sweep = rsub.add_parser(
        "sweep",
        help="per-cell progress, ETA, and error tables for a "
             "--via-jobs sweep",
        parents=[queue_common],
    )
    report_sweep.add_argument(
        "--benchmark", default=None, choices=benchmark_names(),
        help="restrict the report to one benchmark's cells",
    )
    report_sweep.add_argument(
        "--json", action="store_true",
        help="emit the report as machine-readable JSON",
    )
    report_sweep.add_argument(
        "--no-errors", action="store_true",
        help="skip loading result artifacts for the k/CPI-error "
             "columns (faster on large queues)",
    )

    ledger = sub.add_parser(
        "ledger",
        help="cross-run ledger: log/list/diff manifests, check for drift",
        parents=[common],
    )
    ledger.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="ledger JSONL file (default: REPRO_LEDGER or "
             "./repro-ledger.jsonl)",
    )
    lsub = ledger.add_subparsers(dest="ledger_command", required=True)

    ledger_log = lsub.add_parser(
        "log", help="append one run manifest to the ledger"
    )
    ledger_log.add_argument("manifest", help="path to a manifest.json")

    ledger_list = lsub.add_parser("list", help="list logged runs")
    ledger_list.add_argument(
        "--fingerprint", default=None, metavar="PREFIX",
        help="only runs whose config fingerprint starts with PREFIX",
    )

    ledger_diff = lsub.add_parser(
        "diff", help="structured field-by-field diff of two runs"
    )
    ledger_diff.add_argument(
        "old", help="baseline: a manifest path or a logged run id"
    )
    ledger_diff.add_argument(
        "new", help="candidate: a manifest path or a logged run id"
    )
    ledger_diff.add_argument(
        "--all", action="store_true",
        help="show unchanged fields too",
    )

    ledger_check = lsub.add_parser(
        "check",
        help="drift sentinel: exit non-zero when accuracy or "
             "performance drifts beyond tolerance",
    )
    ledger_check.add_argument("manifest", help="candidate manifest.json")
    ledger_check.add_argument(
        "--baseline", default=None, metavar="RUN_OR_PATH",
        help="explicit baseline (run id or manifest path); default: the "
             "latest logged run with the same config fingerprint",
    )
    ledger_check.add_argument(
        "--log", action="store_true",
        help="log the candidate to the ledger when the check passes "
             "(or when it is the first run of its fingerprint)",
    )
    ledger_check.add_argument(
        "--max-error-increase", type=float, default=None, metavar="X",
        dest="max_error_increase",
        help="max absolute worsening of any error-table entry "
             "(default 0.002)",
    )
    ledger_check.add_argument(
        "--max-bias-shift", type=float, default=None, metavar="X",
        dest="max_bias_shift",
        help="max absolute shift of any per-cluster bias (default 0.05)",
    )
    ledger_check.add_argument(
        "--max-stage-regression", type=float, default=None, metavar="R",
        dest="max_stage_regression",
        help="max relative stage slowdown, e.g. 1.0 = 2x (default 1.0)",
    )
    ledger_check.add_argument(
        "--max-total-regression", type=float, default=None, metavar="R",
        dest="max_total_regression",
        help="max relative total-time slowdown (default 1.0)",
    )
    ledger_check.add_argument(
        "--stage-min-seconds", type=float, default=None, metavar="S",
        dest="stage_min_seconds",
        help="ignore slowdowns smaller than S seconds absolute "
             "(default 0.25)",
    )
    ledger_check.add_argument(
        "--max-hit-rate-drop", type=float, default=None, metavar="X",
        dest="max_hit_rate_drop",
        help="max cache hit-rate drop (default 0.10)",
    )
    ledger_check.add_argument(
        "--max-coverage-drop", type=float, default=None, metavar="X",
        dest="max_coverage_drop",
        help="max drop in cross-binary matcher coverage (per pair or "
             "worst pair) between runs (default 0.02)",
    )
    ledger_check.add_argument(
        "--max-confidence-drop", type=float, default=None, metavar="X",
        dest="max_confidence_drop",
        help="max drop in the weakest accepted marker's confidence "
             "(default 0.05)",
    )
    ledger_check.add_argument(
        "--max-job-failure-rate", type=float, default=None, metavar="X",
        dest="max_job_failure_rate",
        help="max fraction of jobs ending failed/exhausted "
             "(default 0.0 — any failed job is drift)",
    )
    ledger_check.add_argument(
        "--max-job-retry-rate", type=float, default=None, metavar="X",
        dest="max_job_retry_rate",
        help="max job retries per completed job (default 0.25)",
    )
    ledger_check.add_argument(
        "--max-queue-wait-p95", type=float, default=None, metavar="S",
        dest="max_queue_wait_p95",
        help="absolute ceiling on the candidate's p95 job queue-wait "
             "seconds (default: off — needs the event journal)",
    )
    ledger_check.add_argument(
        "--min-sim-hit-rate", type=float, default=None, metavar="X",
        dest="min_sim_hit_rate",
        help="minimum sim-result reuse ratio the candidate must reach "
             "(default: off — cold runs legitimately sit at 0)",
    )
    ledger_check.add_argument(
        "--min-clustering-hit-rate", type=float, default=None,
        metavar="X", dest="min_clustering_hit_rate",
        help="minimum clustering reuse ratio the candidate must reach "
             "(default: off — cold runs legitimately sit at 0)",
    )
    ledger_check.add_argument(
        "--allow-k-change", dest="forbid_k_change",
        action="store_const", const=False, default=None,
        help="do not treat a chosen-k flip as drift",
    )
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "summary": _cmd_summary,
    "phases": _cmd_phases,
    "pinpoints": _cmd_pinpoints,
    "regions": _cmd_regions,
    "figures": _cmd_figures,
    "validate": _cmd_validate,
    "inspect": _cmd_inspect,
    "ledger": _cmd_ledger,
    "submit": _cmd_submit,
    "serve": _cmd_serve,
    "jobs": _cmd_jobs,
    "top": _cmd_top,
    "report": _cmd_report,
}


def _resolve_runtime(args: argparse.Namespace):
    """The CLI's effective (jobs, cache) from flags and environment."""
    import os

    from repro.runtime import ProfileCache

    jobs = args.jobs
    if jobs is None and not os.environ.get("REPRO_JOBS"):
        jobs = os.cpu_count() or 1
    no_sim_cache = args.no_sim_cache or bool(
        os.environ.get("REPRO_NO_SIM_CACHE")
    )
    sim_cache = False if no_sim_cache else None
    no_clustering_cache = args.no_clustering_cache or bool(
        os.environ.get("REPRO_NO_CLUSTERING_CACHE")
    )
    clustering_cache = False if no_clustering_cache else None
    no_cache = args.no_cache or bool(os.environ.get("REPRO_NO_CACHE"))
    if no_cache:
        return jobs, None, sim_cache, clustering_cache
    cache_dir = (
        args.cache_dir
        or os.environ.get("REPRO_CACHE_DIR")
        or os.path.join(os.path.expanduser("~"), ".cache", "repro")
    )
    return jobs, ProfileCache(cache_dir), sim_cache, clustering_cache


def main(argv: Optional[List[str]] = None) -> int:
    from repro.observability import observe, record_config
    from repro.runtime import runtime_session

    args = build_parser().parse_args(argv)
    jobs, cache, sim_cache, clustering_cache = _resolve_runtime(args)
    try:
        with runtime_session(
            jobs=jobs, cache=cache,
            match_confidence=args.match_confidence,
            sim_cache=sim_cache,
            clustering_cache=clustering_cache,
        ):
            with observe(
                trace_out=args.trace_out,
                metrics_out=args.metrics_out,
                command=list(argv) if argv is not None else sys.argv[1:],
            ):
                record_config(
                    sorted(
                        (key, repr(value))
                        for key, value in vars(args).items()
                    )
                )
                return _COMMANDS[args.command](args)
    finally:
        if cache is not None and cache.stats.lookups:
            from repro.experiments.reporting import render_cache_stats

            print(f"\n{render_cache_stats(cache.stats)}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
