"""repro — a reproduction of "Cross Binary Simulation Points" (ISPASS 2007).

The library implements the paper's contribution — finding a single set
of simulation points mappable across multiple binaries of one program —
together with every substrate the evaluation depends on: a synthetic
SPEC2000-like benchmark suite, a compiler producing the paper's four
binaries per program, a Pin-like execution engine, SimPoint 3.0, and a
CMP$im-style cache-hierarchy simulator.

Typical use::

    from repro import (
        build_benchmark, compile_standard_binaries,
        run_cross_binary_simpoint, CrossBinaryConfig, CMPSim,
    )

    program = build_benchmark("gcc")
    binaries = list(compile_standard_binaries(program).values())
    result = run_cross_binary_simpoint(binaries, CrossBinaryConfig())
    # result.mapped_points are (marker, count) regions valid in every
    # binary; result.weights holds per-binary phase weights.

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.analysis import (
    MethodEstimate,
    PhaseRow,
    SpeedupComparison,
    phase_table,
    relative_error,
    speedup_comparison,
)
from repro.cmpsim import (
    CMPSim,
    FLITracker,
    MemoryConfig,
    MemoryHierarchy,
    RegionSpec,
    SetAssociativeCache,
    TABLE1_CONFIG,
    VLITracker,
)
from repro.compilation import (
    ISA,
    OptLevel,
    STANDARD_TARGETS,
    Target,
    compile_program,
    compile_standard_binaries,
)
from repro.core import (
    CrossBinaryConfig,
    CrossBinaryResult,
    MappablePoint,
    MarkerKind,
    MarkerSet,
    find_mappable_points,
    run_cross_binary_simpoint,
    run_per_binary_simpoint,
    run_per_binary_simpoints,
)
from repro.errors import ReproError
from repro.execution import ExecutionEngine, PinTool, run_binary, run_with_tools
from repro.profiling import (
    CallBranchProfile,
    Interval,
    collect_call_branch_profile,
    collect_fli_bbvs,
)
from repro.programs import (
    ProgramInput,
    REF_INPUT,
    benchmark_names,
    build_benchmark,
    build_suite,
)
from repro.runtime import (
    CacheStats,
    ProfileCache,
    parallel_map,
    runtime_session,
)
from repro.simpoint import (
    SimPointConfig,
    SimPointResult,
    SimulationPoint,
    run_simpoint,
)

__version__ = "1.0.0"

__all__ = [
    "MethodEstimate",
    "PhaseRow",
    "SpeedupComparison",
    "phase_table",
    "relative_error",
    "speedup_comparison",
    "CMPSim",
    "FLITracker",
    "MemoryConfig",
    "MemoryHierarchy",
    "RegionSpec",
    "SetAssociativeCache",
    "TABLE1_CONFIG",
    "VLITracker",
    "ISA",
    "OptLevel",
    "STANDARD_TARGETS",
    "Target",
    "compile_program",
    "compile_standard_binaries",
    "CrossBinaryConfig",
    "CrossBinaryResult",
    "MappablePoint",
    "MarkerKind",
    "MarkerSet",
    "find_mappable_points",
    "run_cross_binary_simpoint",
    "run_per_binary_simpoint",
    "run_per_binary_simpoints",
    "ReproError",
    "CacheStats",
    "ProfileCache",
    "parallel_map",
    "runtime_session",
    "ExecutionEngine",
    "PinTool",
    "run_binary",
    "run_with_tools",
    "CallBranchProfile",
    "Interval",
    "collect_call_branch_profile",
    "collect_fli_bbvs",
    "ProgramInput",
    "REF_INPUT",
    "benchmark_names",
    "build_benchmark",
    "build_suite",
    "SimPointConfig",
    "SimPointResult",
    "SimulationPoint",
    "run_simpoint",
    "__version__",
]
