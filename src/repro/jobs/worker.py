"""Workers: claim jobs, run registered executors, write receipts.

An *executor* is a module-level function ``payload -> JobResult`` for
one job kind, registered with :func:`register_executor`. Workers never
import job-specific code themselves; the registry is the seam between
the generic queue machinery and the experiment pipeline (see
:mod:`repro.jobs.service` for the default executors).

:func:`run_worker` is one worker loop in the current process;
:func:`run_worker_pool` forks a pool of them and drives the queue to a
fully drained state, force-reclaiming the leases of any worker that
died (or was killed) mid-job so the survivors retry them on the next
round. Every execution attempt ends in a receipt — ``ok`` or
``failed`` from the worker itself, ``exhausted`` from the reclaimer —
so the pool terminates even when jobs crash deterministically.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import JobError
from repro.jobs.queue import JobQueue
from repro.jobs.receipts import JobReceipt
from repro.runtime import parallel
from repro.runtime.config import resolve_jobs


@dataclass(frozen=True)
class JobResult:
    """What an executor hands back for the receipt and the artifact.

    ``value`` is pickled into the queue's artifact store; the rest is
    provenance copied into the :class:`~repro.jobs.receipts.JobReceipt`.
    """

    value: Any
    input_hashes: Dict[str, str] = field(default_factory=dict)
    command: List[str] = field(default_factory=list)
    config_fingerprint: Optional[str] = None
    #: Sim-result cache tallies of this execution (hits/misses/
    #: stale_evictions), so a sweep's per-region reuse is auditable
    #: from receipts and foldable into the submitting process's
    #: metrics even when the executor ran in a forked worker.
    sim_cache: Dict[str, int] = field(default_factory=dict)
    #: Clustering cache tallies of this execution, same contract as
    #: ``sim_cache`` for the ``"clustering"`` kind.
    clustering_cache: Dict[str, int] = field(default_factory=dict)


Executor = Callable[[Mapping[str, Any]], JobResult]

_EXECUTORS: Dict[str, Executor] = {}


def register_executor(
    kind: str, fn: Executor, *, replace: bool = False
) -> None:
    """Install the executor for one job kind (module-level, picklable)."""
    if kind in _EXECUTORS and not replace:
        raise JobError(f"executor for kind {kind!r} already registered")
    _EXECUTORS[kind] = fn


def executor_for(kind: str) -> Executor:
    try:
        return _EXECUTORS[kind]
    except KeyError:
        known = ", ".join(sorted(_EXECUTORS)) or "(none)"
        raise JobError(
            f"no executor registered for job kind {kind!r}; known: {known}"
        ) from None


def execute_record(
    queue: JobQueue, record: Mapping[str, Any], worker_id: str
) -> JobReceipt:
    """Run one claimed job to a terminal receipt and drop its lease.

    An exception from the executor is a *failed job*, not a failed
    worker: it is captured into a ``failed`` receipt so the worker
    loop survives and the job does not retry (deterministic failures
    would fail identically again). Only process death — which cannot
    write a receipt — leads to retry, via lease reclaim.
    """
    job_id = record["id"]
    kind = record["kind"]
    attempt = int(record.get("attempt", 0)) + 1
    queue.emit(
        "job.started",
        job_id=job_id,
        kind=kind,
        worker=worker_id or "worker",
        attempt=attempt,
    )
    start = time.perf_counter()
    try:
        result = executor_for(kind)(record["payload"])
    except Exception as exc:  # noqa: BLE001 - captured into the receipt
        receipt = JobReceipt(
            job_id=job_id,
            kind=kind,
            status="failed",
            attempt=attempt,
            worker=worker_id,
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            created_at=time.time(),
        )
    else:
        artifact_hash = queue.store_artifact(job_id, result.value)
        receipt = JobReceipt(
            job_id=job_id,
            kind=kind,
            status="ok",
            attempt=attempt,
            worker=worker_id,
            seconds=time.perf_counter() - start,
            command=list(result.command),
            config_fingerprint=result.config_fingerprint,
            input_hashes=dict(result.input_hashes),
            artifact_hashes={"result": artifact_hash},
            sim_cache=dict(result.sim_cache),
            clustering_cache=dict(result.clustering_cache),
            created_at=time.time(),
        )
    queue.write_receipt(receipt)
    queue.release(job_id)
    return receipt


def run_worker(
    queue: JobQueue,
    worker_id: str = "worker",
    *,
    drain: bool = True,
    poll_seconds: float = 0.05,
    max_jobs: Optional[int] = None,
    heartbeat_seconds: float = 5.0,
) -> int:
    """One worker loop; returns the number of jobs executed.

    With ``drain=True`` (the default) the loop exits once nothing is
    claimable — leases held by *other* workers are their problem, and
    the pool's force-reclaim handles them if those workers died. With
    ``drain=False`` the worker polls forever (a long-lived server).

    With the queue's event journal enabled the loop brackets itself
    with ``worker.started``/``worker.exited`` events and emits a
    ``worker.heartbeat`` at most every ``heartbeat_seconds`` while it
    lives, so ``repro top`` can tell live workers from dead ones. A
    SIGKILLed worker simply never writes its exit event — its silence
    *is* the signal.
    """
    executed = 0
    queue.emit("worker.started", worker=worker_id or "worker")
    last_beat = time.monotonic()
    try:
        while True:
            if queue.journal is not None:
                now = time.monotonic()
                if now - last_beat >= heartbeat_seconds:
                    last_beat = now
                    queue.emit(
                        "worker.heartbeat",
                        worker=worker_id or "worker",
                        executed=executed,
                    )
            record = queue.claim(worker_id)
            if record is None and queue.reclaim_expired():
                record = queue.claim(worker_id)
            if record is None:
                if drain:
                    return executed
                time.sleep(poll_seconds)
                continue
            execute_record(queue, record, worker_id)
            executed += 1
            if max_jobs is not None and executed >= max_jobs:
                return executed
    finally:
        queue.emit(
            "worker.exited",
            worker=worker_id or "worker",
            executed=executed,
        )


def _pool_worker(
    root: str,
    lease_seconds: float,
    max_attempts: int,
    worker_id: str,
    events: bool = False,
) -> None:
    """Forked pool member: reopen the queue and drain what it can."""
    # Forked workers inherit the registered executors and runtime
    # defaults; suppress any nested process pools the executors might
    # otherwise spawn. The parent queue's event-journal toggle travels
    # explicitly, so a programmatically enabled journal (no env var)
    # still sees worker-side events.
    parallel._mark_worker()
    run_worker(
        JobQueue(
            root,
            lease_seconds=lease_seconds,
            max_attempts=max_attempts,
            events=events,
        ),
        worker_id,
        drain=True,
    )


def run_worker_pool(
    queue: JobQueue, workers: Optional[int] = None
) -> None:
    """Drive the queue to drained with a pool of forked workers.

    Runs in rounds: fork ``workers`` drain-mode workers, join them,
    then force-reclaim every leftover lease — after the join, any
    still-active lease belongs to a worker that died (or was killed)
    mid-job, so its job is requeued (or exhausted) for the next round.
    Attempt counts bound the rounds: a job that kills its worker every
    time ends ``exhausted`` rather than looping forever.
    """
    n_workers = resolve_jobs(workers)
    rounds = 0
    while True:
        queue.reclaim_expired()
        if queue.is_drained():
            return
        rounds += 1
        if rounds > queue.max_attempts + 1:
            raise JobError(
                f"{queue.root}: queue not drained after {rounds - 1} "
                f"worker-pool rounds; pending={queue.pending_ids()} "
                f"active={queue.active_ids()}"
            )
        if n_workers <= 1 or parallel._in_worker:
            run_worker(queue, "worker-0", drain=True)
        else:
            context = multiprocessing.get_context("fork")
            processes = [
                context.Process(
                    target=_pool_worker,
                    args=(
                        str(queue.root),
                        queue.lease_seconds,
                        queue.max_attempts,
                        f"worker-{index}",
                        queue.journal is not None,
                    ),
                )
                for index in range(n_workers)
            ]
            for process in processes:
                process.start()
            for process in processes:
                process.join()
        queue.reclaim_expired(force=True)
