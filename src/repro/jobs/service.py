"""The job-service glue: experiment jobs, executors, and sweep sharding.

This module binds the generic queue/worker machinery to the experiment
pipeline:

* an :class:`~repro.experiments.runner.ExperimentConfig` is lowered to
  a pure-JSON payload (and back), so job ids are content-derived and
  stable across processes;
* the ``benchmark`` executor runs one benchmark through
  :func:`~repro.experiments.runner.run_benchmark` exactly as the
  direct path would — same pipeline, same ProfileCache — so a job's
  artifact is bit-identical to an in-process run;
* :func:`run_sweep_via_jobs` shards a sweep's cells through the queue
  in bounded waves (backpressure), resumes from existing receipts, and
  folds the jobs' outcomes back into the runner's in-process memo;
* :func:`record_job_metrics` derives the ``jobs.*`` counters from the
  receipts in the *parent* process, so they land in the run manifest
  and the ledger's drift sentinel can gate on failure/retry rates no
  matter which worker processes did the executing.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.cmpsim.config import TABLE1_CONFIG
from repro.compilation.targets import target_by_label
from repro.errors import JobError
from repro.experiments.runner import (
    BenchmarkRun,
    ExperimentConfig,
    remember_run,
    run_benchmark,
)
from repro.jobs.queue import JobQueue, job_id_for
from repro.jobs.receipts import JobReceipt
from repro.jobs.worker import (
    JobResult,
    register_executor,
    run_worker_pool,
)
from repro.observability import metrics
from repro.observability.events import (
    lease_age_samples,
    queue_wait_samples,
    read_events,
)
from repro.programs.inputs import ProgramInput
from repro.runtime.config import resolve_jobs
from repro.runtime.fingerprint import fingerprint
from repro.simpoint.simpoint import SimPointConfig

#: Default queue location: ``REPRO_QUEUE`` or a directory in the cwd.
DEFAULT_QUEUE_DIR = "repro-queue"

BENCHMARK_JOB_KIND = "benchmark"


def default_queue_root() -> str:
    """The queue the CLI uses absent ``--queue``: env or cwd."""
    return os.environ.get("REPRO_QUEUE") or DEFAULT_QUEUE_DIR


# -- config <-> JSON payload ------------------------------------------


def encode_experiment_config(config: ExperimentConfig) -> Dict[str, Any]:
    """Lower a config to plain JSON so payloads fingerprint stably.

    Only configs with the default (Table 1) memory system are
    encodable — a custom memory hierarchy is a nested dataclass tree
    with no label to recover it by, and no experiment in the paper
    varies it.
    """
    if config.memory != TABLE1_CONFIG:
        raise JobError(
            "job payloads only encode the default Table-1 memory "
            "configuration; run custom memory configs via the direct "
            "path instead"
        )
    return {
        "interval_size": config.interval_size,
        "simpoint": dataclasses.asdict(config.simpoint),
        "program_input": dataclasses.asdict(config.program_input),
        "targets": [target.label for target in config.targets],
        "primary_index": config.primary_index,
        "enable_signature_recovery": config.enable_signature_recovery,
        "match_confidence": config.match_confidence,
    }


def decode_experiment_config(
    payload: Mapping[str, Any]
) -> ExperimentConfig:
    """Rebuild the exact config a payload was encoded from."""
    try:
        return ExperimentConfig(
            interval_size=int(payload["interval_size"]),
            simpoint=SimPointConfig(**payload["simpoint"]),
            program_input=ProgramInput(**payload["program_input"]),
            targets=tuple(
                target_by_label(label) for label in payload["targets"]
            ),
            primary_index=int(payload["primary_index"]),
            enable_signature_recovery=bool(
                payload["enable_signature_recovery"]
            ),
            match_confidence=payload.get("match_confidence"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"malformed experiment-config payload: {exc}") from exc


def benchmark_job_spec(
    benchmark: str, config: Optional[ExperimentConfig] = None
):
    """The (kind, payload) of one benchmark experiment job."""
    config = config or ExperimentConfig()
    payload = {
        "benchmark": benchmark,
        "config": encode_experiment_config(config),
    }
    return BENCHMARK_JOB_KIND, payload


# -- executors --------------------------------------------------------


def _execute_benchmark(payload: Mapping[str, Any]) -> JobResult:
    """Worker-side: one benchmark's full experiment, serially.

    ``jobs=1`` is load-bearing: pool workers are plain forked
    processes, so without it a worker could spawn its own nested
    process pool per benchmark.
    """
    benchmark = payload["benchmark"]
    config = decode_experiment_config(payload["config"])
    # A scoped registry makes the execution's sim-cache tallies exactly
    # attributable to this job: forked workers' registries die with
    # them, and when the pool degrades to in-process execution the
    # scope keeps the receipt tallies from double-counting against the
    # parent's own counters (record_job_metrics folds them back in,
    # receipt-derived, exactly once). Everything else the execution
    # counted is merged into the enclosing registry as before.
    with metrics.scoped_registry() as local:
        run = run_benchmark(benchmark, config, jobs=1)
    snapshot = local.snapshot()
    counters = snapshot.get("counters") or {}
    sim_cache = {
        key: int(counters.pop(f"cache.sim.{key}", 0))
        for key in ("hits", "misses", "stale_evictions")
    }
    clustering_cache = {
        key: int(counters.pop(f"cache.clustering.{key}", 0))
        for key in ("hits", "misses", "stale_evictions")
    }
    metrics.merge(snapshot)
    return JobResult(
        value=run,
        input_hashes={
            "benchmark": fingerprint("benchmark", benchmark),
            "config": fingerprint("experiment-config", payload["config"]),
        },
        command=[
            "repro", "submit", benchmark,
            "--sizes", str(config.interval_size),
        ],
        # Matches ObservationSession.record_config, so a receipt can be
        # joined against the manifests/ledger entries of equivalent runs.
        config_fingerprint=fingerprint("config", config.cache_key()),
        sim_cache=sim_cache,
        clustering_cache=clustering_cache,
    )


def ensure_default_executors() -> None:
    """Register the built-in executors (idempotent)."""
    register_executor(
        BENCHMARK_JOB_KIND, _execute_benchmark, replace=True
    )


# -- submission and collection ----------------------------------------


def submit_benchmark(
    queue: JobQueue,
    benchmark: str,
    config: Optional[ExperimentConfig] = None,
    *,
    retry: bool = False,
) -> str:
    """Queue one benchmark experiment; returns the job id."""
    kind, payload = benchmark_job_spec(benchmark, config)
    return queue.submit(kind, payload, retry=retry)


def collect_run(queue: JobQueue, job_id: str) -> BenchmarkRun:
    """A finished benchmark job's run, installed in the runner memo."""
    receipt = queue.receipt(job_id)
    if receipt is None:
        raise JobError(
            f"job {job_id[:12]} has no receipt yet (still queued or "
            f"running)"
        )
    if not receipt.ok:
        raise JobError(
            f"job {job_id[:12]} ended {receipt.status} after attempt "
            f"{receipt.attempt}: {receipt.error}"
        )
    run = queue.load_artifact(job_id)
    remember_run(run)
    return run


def record_job_metrics(
    queue: JobQueue, job_ids: Iterable[str]
) -> Dict[str, int]:
    """Fold the jobs' receipt outcomes into this process's counters.

    Executions happen in worker processes whose metric registries die
    with them, so the authoritative ``jobs.completed`` / ``jobs.failed``
    / ``jobs.exhausted`` / ``jobs.retries`` counts are derived from the
    receipts here, parent-side — that is what flows into the manifest
    and lets ``repro ledger check`` gate on failure and retry rates.

    Alongside the counters, fleet-health *histograms* are folded in:
    every executed receipt's wall seconds land in
    ``jobs.execution_seconds``, and when the queue has an event
    journal, per-claim queue waits and per-lease lifetimes (derived by
    pairing the jobs' journal events) land in
    ``jobs.queue_wait_seconds`` / ``jobs.lease_age_seconds`` — which is
    how those quantiles reach the manifest, the ledger, and the
    ``--max-queue-wait-p95`` drift gate.
    """
    job_ids = list(job_ids)
    tallies = {"completed": 0, "failed": 0, "exhausted": 0, "retries": 0}
    sim_tallies = {"hits": 0, "misses": 0, "stale_evictions": 0}
    clustering_tallies = {"hits": 0, "misses": 0, "stale_evictions": 0}
    for job_id in job_ids:
        receipt = queue.receipt(job_id)
        if receipt is None:
            continue
        if receipt.ok:
            tallies["completed"] += 1
        else:
            tallies[receipt.status] += 1
        tallies["retries"] += receipt.retries
        if receipt.status != "exhausted":
            # Exhausted receipts never executed to completion; their
            # zero seconds would only distort the distribution.
            metrics.histogram("jobs.execution_seconds").observe(
                receipt.seconds
            )
        for key, value in receipt.sim_cache.items():
            if key in sim_tallies:
                sim_tallies[key] += int(value)
        for key, value in receipt.clustering_cache.items():
            if key in clustering_tallies:
                clustering_tallies[key] += int(value)
    for name, value in tallies.items():
        if value:
            metrics.counter(f"jobs.{name}").inc(value)
    # Per-region sim-cache and per-profile clustering reuse travel in
    # the receipts, so the manifest's reuse ratios cover --via-jobs
    # sweeps no matter which worker processes did the executing.
    for name, value in sim_tallies.items():
        if value:
            metrics.counter(f"cache.sim.{name}").inc(value)
    for name, value in clustering_tallies.items():
        if value:
            metrics.counter(f"cache.clustering.{name}").inc(value)
    if queue.events_path.exists():
        wanted = set(job_ids)
        job_events = [
            event
            for event in read_events(queue.events_path)
            if event.get("job_id") in wanted
        ]
        for wait in queue_wait_samples(job_events):
            metrics.histogram("jobs.queue_wait_seconds").observe(wait)
        for age in lease_age_samples(job_events):
            metrics.histogram("jobs.lease_age_seconds").observe(age)
    return tallies


# -- sweep sharding ---------------------------------------------------


def run_sweep_via_jobs(
    benchmark: str,
    sizes: Sequence[int],
    base_config: Optional[ExperimentConfig],
    queue: JobQueue,
    *,
    workers: Optional[int] = None,
) -> Dict[int, BenchmarkRun]:
    """Run a sweep's cells through the queue; returns runs by size.

    Cells are submitted in bounded waves (backpressure: at most
    ``2 x workers`` jobs in flight, so a huge sweep never floods the
    spool ahead of its workers) and each wave is drained by a worker
    pool. Submission is idempotent, so an interrupted sweep rerun with
    the same queue resumes: cells with successful receipts are *not*
    re-executed — their artifacts are loaded straight from the store —
    and only unfinished cells ever reach a worker. Results are
    bit-identical to the direct path: the executor runs the same
    pipeline, and a pickle round-trip preserves run equality.
    """
    ensure_default_executors()
    base_config = base_config or ExperimentConfig()
    cells = [
        (size, dataclasses.replace(base_config, interval_size=size))
        for size in sizes
    ]
    job_ids = {
        size: job_id_for(*benchmark_job_spec(benchmark, config))
        for size, config in cells
    }
    config_fingerprint = fingerprint("config", base_config.cache_key())
    queue.emit(
        "sweep.started",
        benchmark=benchmark,
        cells=len(cells),
        config_fingerprint=config_fingerprint,
    )
    max_inflight = max(2 * resolve_jobs(workers), 4)
    for wave_index, start in enumerate(
        range(0, len(cells), max_inflight)
    ):
        wave = cells[start:start + max_inflight]
        submitted = 0
        for size, config in wave:
            receipt = queue.receipt(job_ids[size])
            if receipt is not None and receipt.ok:
                continue  # resume: this cell already finished
            submit_benchmark(queue, benchmark, config, retry=True)
            submitted += 1
        queue.emit(
            "sweep.wave",
            benchmark=benchmark,
            wave=wave_index,
            submitted=submitted,
            resumed=len(wave) - submitted,
            config_fingerprint=config_fingerprint,
        )
        if submitted:
            run_worker_pool(queue, workers)
    runs = {size: collect_run(queue, job_ids[size]) for size, _ in cells}
    record_job_metrics(queue, job_ids.values())
    queue.emit(
        "sweep.finished",
        benchmark=benchmark,
        cells=len(cells),
        config_fingerprint=config_fingerprint,
    )
    return runs


# -- receipt-driven sweep reports --------------------------------------


@dataclasses.dataclass(frozen=True)
class SweepReportRow:
    """One sweep cell's progress, joined from spool and receipt."""

    benchmark: str
    interval_size: int
    job_id: str
    #: ``ok``/``failed``/``exhausted`` from the receipt, or the live
    #: ``active``/``pending`` state, or ``missing`` for a spooled job
    #: the queue no longer knows (manually cleaned directories).
    status: str
    attempt: int = 0
    seconds: Optional[float] = None
    worker: str = ""
    error: Optional[str] = None
    k: Optional[int] = None
    fli_cpi_error: Optional[float] = None
    vli_cpi_error: Optional[float] = None

    def to_payload(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SweepReport:
    """Receipt-driven progress of the sweeps a queue has seen."""

    root: str
    generated_at: float
    rows: List[SweepReportRow]

    @property
    def total(self) -> int:
        return len(self.rows)

    @property
    def completed(self) -> int:
        return sum(1 for row in self.rows if row.status == "ok")

    @property
    def mean_seconds(self) -> Optional[float]:
        samples = [
            row.seconds
            for row in self.rows
            if row.status == "ok" and row.seconds is not None
        ]
        return sum(samples) / len(samples) if samples else None

    @property
    def remaining_seconds(self) -> Optional[float]:
        """Serial work left: unfinished cells x mean ok seconds."""
        unfinished = sum(
            1
            for row in self.rows
            if row.status in ("pending", "active", "missing")
        )
        if unfinished == 0:
            return 0.0
        mean = self.mean_seconds
        return unfinished * mean if mean is not None else None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "generated_at": self.generated_at,
            "total": self.total,
            "completed": self.completed,
            "mean_seconds": self.mean_seconds,
            "remaining_seconds": self.remaining_seconds,
            "rows": [row.to_payload() for row in self.rows],
        }


def _spooled_benchmark_jobs(
    queue: JobQueue, benchmark: Optional[str]
) -> Dict[str, Dict[str, Any]]:
    """Benchmark submissions from the spool, first record per job id."""
    jobs: Dict[str, Dict[str, Any]] = {}
    try:
        text = queue.spool_path.read_text()
    except FileNotFoundError:
        return jobs
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("kind") != BENCHMARK_JOB_KIND:
            continue
        payload = record.get("payload") or {}
        if benchmark is not None and payload.get("benchmark") != benchmark:
            continue
        jobs.setdefault(record["id"], record)
    return jobs


def sweep_report(
    queue: JobQueue,
    benchmark: Optional[str] = None,
    *,
    load_errors: bool = True,
    now: Optional[float] = None,
) -> SweepReport:
    """Join the spool's benchmark submissions against their receipts.

    The spool is the authoritative record of what a sweep asked for
    (every actual queueing appends there), the receipts of what
    happened; the join is therefore resumable-sweep-accurate — cells
    resumed from earlier receipts never re-enter the spool, yet their
    receipts still close the original submission. With ``load_errors``
    each finished cell's pickled :class:`BenchmarkRun` artifact is
    loaded to report the paper's per-interval-size error table (chosen
    k, average FLI/VLI CPI error); pass ``False`` to keep the report
    pure directory reads.
    """
    rows: List[SweepReportRow] = []
    for job_id, record in _spooled_benchmark_jobs(
        queue, benchmark
    ).items():
        payload = record.get("payload") or {}
        cell_benchmark = str(payload.get("benchmark", "?"))
        config = payload.get("config") or {}
        interval_size = int(config.get("interval_size", 0))
        receipt = queue.receipt(job_id)
        k = fli = vli = None
        if receipt is not None:
            status = receipt.status
            attempt = receipt.attempt
            seconds: Optional[float] = receipt.seconds
            worker = receipt.worker
            error = receipt.error
            if receipt.ok and load_errors:
                k, fli, vli = _artifact_errors(queue, job_id)
        else:
            attempt, seconds, worker, error = 0, None, "", None
            if queue._active_path(job_id).exists():
                status = "active"
            elif queue._pending_path(job_id).exists():
                status = "pending"
            else:
                status = "missing"
        rows.append(
            SweepReportRow(
                benchmark=cell_benchmark,
                interval_size=interval_size,
                job_id=job_id,
                status=status,
                attempt=attempt,
                seconds=seconds,
                worker=worker,
                error=error,
                k=k,
                fli_cpi_error=fli,
                vli_cpi_error=vli,
            )
        )
    rows.sort(key=lambda row: (row.benchmark, row.interval_size))
    return SweepReport(
        root=str(queue.root),
        generated_at=time.time() if now is None else now,
        rows=rows,
    )


def _artifact_errors(queue: JobQueue, job_id: str):
    """(k, fli, vli) from a finished cell's artifact, best-effort."""
    try:
        run = queue.load_artifact(job_id)
        return (
            run.cross.simpoint.k,
            run.average_cpi_error("fli"),
            run.average_cpi_error("vli"),
        )
    except Exception:  # noqa: BLE001 - report stays best-effort
        return None, None, None


def render_sweep_report(report: SweepReport) -> str:
    """The ``repro report sweep`` table."""
    if not report.rows:
        return f"queue: {report.root}\n(no benchmark jobs in the spool)"
    remaining = report.remaining_seconds
    lines = [
        f"queue: {report.root}",
        (
            f"progress: {report.completed}/{report.total} cells ok"
            + (
                f"  mean {report.mean_seconds:.2f}s/cell"
                if report.mean_seconds is not None
                else ""
            )
            + (
                f"  ~{remaining:.0f}s of serial work left"
                if remaining
                else ""
            )
        ),
        "",
        (
            f"{'benchmark':<10} {'size':>10} {'status':<10} {'att':>3} "
            f"{'seconds':>8} {'k':>3} {'FLI err':>8} {'VLI err':>8} error"
        ),
        "-" * 78,
    ]
    for row in report.rows:
        lines.append(
            f"{row.benchmark:<10} {row.interval_size:>10,} "
            f"{row.status:<10} {row.attempt:>3} "
            + (
                f"{row.seconds:>8.2f}"
                if row.seconds is not None
                else f"{'-':>8}"
            )
            + (f" {row.k:>3}" if row.k is not None else f" {'-':>3}")
            + (
                f" {row.fli_cpi_error:>8.2%}"
                if row.fli_cpi_error is not None
                else f" {'-':>8}"
            )
            + (
                f" {row.vli_cpi_error:>8.2%}"
                if row.vli_cpi_error is not None
                else f" {'-':>8}"
            )
            + f" {row.error or '-'}"
        )
    return "\n".join(lines)


def render_receipts(receipts: Sequence[JobReceipt]) -> str:
    """The ``repro jobs`` receipts table."""
    if not receipts:
        return "(no receipts)"
    lines = [
        f"{'job':<14} {'kind':<10} {'status':<10} {'att':>3} "
        f"{'seconds':>8} {'worker':<10} error",
        "-" * 72,
    ]
    for receipt in receipts:
        lines.append(
            f"{receipt.job_id[:12]:<14} {receipt.kind:<10} "
            f"{receipt.status:<10} {receipt.attempt:>3} "
            f"{receipt.seconds:>8.2f} {receipt.worker:<10} "
            f"{receipt.error or '-'}"
        )
    return "\n".join(lines)
