"""The job service: persistent queue -> workers -> typed receipts.

The submit/queue/worker/artifact-store layer that turns the monolithic
pipeline into a multi-tenant service. :mod:`repro.jobs.queue` is the
crash-safe file-backed queue (claim-by-rename leases, lease timeouts,
idempotent retry), :mod:`repro.jobs.worker` the executor registry and
worker pool, :mod:`repro.jobs.receipts` the exactly-once provenance
records, and :mod:`repro.jobs.service` the binding to the experiment
pipeline (``repro serve`` / ``repro submit`` / ``repro jobs`` and the
``--via-jobs`` sweep path). See ``docs/jobs.md``.
"""

from repro.jobs.queue import JOB_SCHEMA, JobQueue, job_id_for
from repro.jobs.receipts import (
    RECEIPT_SCHEMA,
    RECEIPT_STATUSES,
    JobReceipt,
    exhausted_receipt,
)
from repro.jobs.service import (
    BENCHMARK_JOB_KIND,
    DEFAULT_QUEUE_DIR,
    SweepReport,
    SweepReportRow,
    benchmark_job_spec,
    collect_run,
    decode_experiment_config,
    default_queue_root,
    encode_experiment_config,
    ensure_default_executors,
    record_job_metrics,
    render_receipts,
    render_sweep_report,
    run_sweep_via_jobs,
    submit_benchmark,
    sweep_report,
)
from repro.jobs.worker import (
    JobResult,
    execute_record,
    executor_for,
    register_executor,
    run_worker,
    run_worker_pool,
)

__all__ = [
    "JOB_SCHEMA",
    "RECEIPT_SCHEMA",
    "RECEIPT_STATUSES",
    "BENCHMARK_JOB_KIND",
    "DEFAULT_QUEUE_DIR",
    "JobQueue",
    "JobReceipt",
    "JobResult",
    "SweepReport",
    "SweepReportRow",
    "benchmark_job_spec",
    "collect_run",
    "decode_experiment_config",
    "default_queue_root",
    "encode_experiment_config",
    "ensure_default_executors",
    "execute_record",
    "executor_for",
    "exhausted_receipt",
    "job_id_for",
    "record_job_metrics",
    "register_executor",
    "render_receipts",
    "render_sweep_report",
    "run_sweep_via_jobs",
    "run_worker",
    "run_worker_pool",
    "submit_benchmark",
    "sweep_report",
]
