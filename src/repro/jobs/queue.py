"""Persistent file-backed work queue with crash-safe leases.

One queue is one directory; every transition is a POSIX rename, so any
number of submitter, worker, and reclaimer processes can share it with
no daemon and no database:

```
<root>/
  spool.jsonl           append-only submission log (audit trail)
  pending/<id>.json     submitted, unclaimed job records
  active/<id>.json      leased jobs; lease_expires_at stamped inside
  receipts/<aa>/<id>.json   exactly-once terminal receipts
  artifacts/<aa>/<id>.pkl   pickled job results, content-addressed
  events.jsonl          optional repro.events/v1 journal (see below)
```

The invariants:

* **claim-by-rename** — a worker claims a job by renaming
  ``pending/<id>.json`` to ``active/<id>.json``; the rename either
  succeeds for exactly one claimant or raises ``FileNotFoundError``
  for the losers. The winner then stamps ``lease_expires_at`` (and
  ``leased_at``/``leased_by``) *inside* the active record, so the
  lease clock is an explicit instant, not filesystem metadata —
  coarse-timestamp filesystems and submit/claim clock skew cannot
  expire a fresh lease. The file's mtime is still refreshed as a
  conservative fallback clock for the instants between the rename and
  the stamp landing.
* **lease timeout** — a worker that dies mid-job leaves its active
  file behind; :meth:`JobQueue.reclaim_expired` compares ``now``
  against the stamped ``lease_expires_at`` and takes expired leases
  over with another rename (to a stash name, so two reclaimers cannot
  both requeue it), bumps the attempt count, and either requeues the
  job or writes an ``exhausted`` receipt when attempts run out.
* **idempotent retry** — the job id is the fingerprint of the job's
  kind and payload, so resubmitting the same work is a no-op once a
  successful receipt exists, and a resumed sweep can find its finished
  cells by recomputing their ids.
* **exactly-once receipts** — receipts are published with
  ``os.link`` (fails with ``EEXIST`` for every writer but the first),
  so a slow worker finishing after its lease was reclaimed cannot
  overwrite the retry's receipt.

With events enabled (``events=True`` or ``REPRO_EVENTS``), every
transition additionally appends one ``repro.events/v1`` line to the
queue's ``events.jsonl`` (see :mod:`repro.observability.events`).
Disabled — the default — the journal handle is ``None`` and every
emit site is a single ``is None`` test, so queue behavior and output
are bit-identical to the un-instrumented queue.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import JobError
from repro.jobs.receipts import JobReceipt, exhausted_receipt
from repro.observability import metrics
from repro.observability.events import EventJournal, events_enabled
from repro.runtime.fingerprint import fingerprint
from repro.runtime.locking import append_line

JOB_SCHEMA = "repro.job/v1"

PathLike = Union[str, Path]


def job_id_for(kind: str, payload: Mapping[str, Any]) -> str:
    """The content-derived job id: same work, same id, any process."""
    return fingerprint("job", kind, dict(payload))


class JobQueue:
    """One work-queue directory and this handle's view of it."""

    def __init__(
        self,
        root: PathLike,
        *,
        lease_seconds: float = 300.0,
        max_attempts: int = 3,
        events: Optional[bool] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise JobError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        if max_attempts < 1:
            raise JobError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.root = Path(root)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.spool_path = self.root / "spool.jsonl"
        self.pending_dir = self.root / "pending"
        self.active_dir = self.root / "active"
        self.receipts_dir = self.root / "receipts"
        self.artifacts_dir = self.root / "artifacts"
        self.events_path = self.root / "events.jsonl"
        #: ``None`` when events are disabled — the no-op fast path:
        #: every emit site is one attribute read + ``is None`` test.
        self.journal: Optional[EventJournal] = (
            EventJournal(self.events_path)
            if events_enabled(events)
            else None
        )
        for directory in (
            self.pending_dir,
            self.active_dir,
            self.receipts_dir,
            self.artifacts_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    def emit(self, event: str, **fields: Any) -> None:
        """Journal one fleet event, or do nothing with events off."""
        journal = self.journal
        if journal is None:
            return
        journal.emit(event, **fields)

    # -- addressing ---------------------------------------------------

    def _pending_path(self, job_id: str) -> Path:
        return self.pending_dir / f"{job_id}.json"

    def _active_path(self, job_id: str) -> Path:
        return self.active_dir / f"{job_id}.json"

    def _receipt_path(self, job_id: str) -> Path:
        return self.receipts_dir / job_id[:2] / f"{job_id}.json"

    def _artifact_path(self, job_id: str) -> Path:
        return self.artifacts_dir / job_id[:2] / f"{job_id}.pkl"

    # -- submission ---------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: Mapping[str, Any],
        *,
        retry: bool = False,
    ) -> str:
        """Queue one job; returns its content-derived id.

        Submission is idempotent: a job whose successful receipt
        already exists, or that is already pending or leased, is not
        queued again. A job with a ``failed``/``exhausted`` receipt is
        terminal and stays terminal unless ``retry=True``, which drops
        the old receipt and queues a fresh attempt.
        """
        record = {
            "schema": JOB_SCHEMA,
            "id": job_id_for(kind, payload),
            "kind": kind,
            "payload": dict(payload),
            "attempt": 0,
            "submitted_at": time.time(),
        }
        job_id = record["id"]
        receipt = self.receipt(job_id)
        if receipt is not None:
            if receipt.ok or not retry:
                return job_id
            self._receipt_path(job_id).unlink(missing_ok=True)
        if self._pending_path(job_id).exists() or (
            self._active_path(job_id).exists()
        ):
            return job_id
        self._write_pending(record)
        append_line(self.spool_path, json.dumps(record, sort_keys=True))
        metrics.counter("jobs.submitted").inc()
        self.emit("job.submitted", job_id=job_id, kind=kind, attempt=0)
        return job_id

    def _write_pending(self, record: Mapping[str, Any]) -> None:
        """Publish a complete pending file with tmp-write + rename."""
        self._write_record(self._pending_path(record["id"]), record)

    def _write_record(
        self, path: Path, record: Mapping[str, Any]
    ) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- leasing ------------------------------------------------------

    def claim(self, worker_id: str = "") -> Optional[Dict[str, Any]]:
        """Lease one pending job, or ``None`` if nothing is claimable.

        The rename is the lock: of any number of concurrent claimants,
        exactly one sees it succeed; the rest get ``FileNotFoundError``
        and move on to the next pending file. The winner stamps the
        lease — ``leased_at``/``leased_by`` and the explicit
        ``lease_expires_at`` instant the reclaimer compares against —
        into the active record itself. The ``utime`` before the stamp
        only refreshes the mtime *fallback* clock (renames preserve
        the pending file's mtime, which dates from submit), covering
        the instants before the rewritten record lands.
        """
        for path in sorted(self.pending_dir.glob("*.json")):
            target = self.active_dir / path.name
            try:
                os.rename(path, target)
                os.utime(target)
                record = json.loads(target.read_text())
            except FileNotFoundError:
                continue  # lost the race (or an immediate reclaim)
            now = time.time()
            record["leased_at"] = now
            record["leased_by"] = worker_id
            record["lease_expires_at"] = now + self.lease_seconds
            self._write_record(target, record)
            self.emit(
                "job.claimed",
                job_id=record["id"],
                kind=record.get("kind"),
                worker=worker_id or None,
                attempt=int(record.get("attempt", 0)),
                lease_expires_at=record["lease_expires_at"],
            )
            return record
        return None

    def release(self, job_id: str) -> None:
        """Drop a lease after its receipt is written.

        Releasing a lease that was already reclaimed (or that a stale
        worker releases on behalf of a newer lease) is benign: the
        job's terminal state lives in its exactly-once receipt, never
        in the lease file.
        """
        try:
            self._active_path(job_id).unlink()
        except FileNotFoundError:
            pass

    def reclaim_expired(self, *, force: bool = False) -> int:
        """Take over dead workers' leases; returns the number requeued.

        A lease older than ``lease_seconds`` (or any lease, with
        ``force=True`` — used by the pool after all its workers have
        been joined) is atomically renamed to a stash name, so
        concurrent reclaimers cannot both requeue the same job. A job
        whose receipt appeared in the meantime was finished by a slow
        worker and is simply dropped; otherwise its attempt count is
        bumped and it is either requeued or, out of attempts, closed
        with an ``exhausted`` receipt.
        """
        now = time.time()
        requeued = 0
        for path in sorted(self.active_dir.glob("*.json")):
            if not force and not self._lease_expired(path, now):
                continue
            stash = path.with_suffix(".reclaim")
            try:
                os.rename(path, stash)
            except FileNotFoundError:
                continue  # finished, or another reclaimer won
            try:
                record = json.loads(stash.read_text())
                job_id = record["id"]
                if self.receipt(job_id) is not None:
                    continue  # slow worker finished; lease was litter
                record["attempt"] = int(record.get("attempt", 0)) + 1
                # Requeued records shed their lease stamps: pending
                # files describe work, leases describe custody.
                for stamp in ("leased_at", "leased_by", "lease_expires_at"):
                    record.pop(stamp, None)
                if record["attempt"] >= self.max_attempts:
                    self.write_receipt(
                        exhausted_receipt(
                            job_id, record["kind"], record["attempt"]
                        )
                    )
                    self.emit(
                        "job.exhausted",
                        job_id=job_id,
                        kind=record.get("kind"),
                        attempt=record["attempt"],
                    )
                else:
                    self._write_pending(record)
                    requeued += 1
                    self.emit(
                        "job.reclaimed",
                        job_id=job_id,
                        kind=record.get("kind"),
                        attempt=record["attempt"],
                    )
            finally:
                stash.unlink(missing_ok=True)
        return requeued

    def _lease_expired(self, path: Path, now: float) -> bool:
        """Whether one active file's lease has run out at ``now``.

        The authoritative clock is the ``lease_expires_at`` instant the
        claimer stamped into the record — an explicit wall-clock
        deadline immune to filesystem timestamp granularity and to the
        submit-time mtime a rename preserves. A record caught in the
        instants before the stamp lands (or written by an older build)
        falls back to the just-``utime``\\ d mtime plus the lease
        duration, which is conservative in exactly the right direction:
        a fresh claim can never read as already expired.
        """
        try:
            record = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return False  # completed or mid-publish while we scanned
        expires_at = record.get("lease_expires_at")
        if not isinstance(expires_at, (int, float)):
            try:
                expires_at = path.stat().st_mtime + self.lease_seconds
            except FileNotFoundError:
                return False
        return now > expires_at

    # -- artifacts and receipts ---------------------------------------

    def store_artifact(self, job_id: str, value: Any) -> str:
        """Persist a job's result; returns its SHA-256 content hash."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._artifact_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return hashlib.sha256(payload).hexdigest()

    def load_artifact(self, job_id: str) -> Any:
        """Unpickle a finished job's stored result."""
        path = self._artifact_path(job_id)
        try:
            return pickle.loads(path.read_bytes())
        except FileNotFoundError:
            raise JobError(
                f"{self.root}: no artifact for job {job_id[:12]}"
            ) from None

    def write_receipt(self, receipt: JobReceipt) -> bool:
        """Publish a receipt exactly once; True iff this writer won.

        ``os.link`` of a fully-written temp file is the commit point:
        it fails with ``FileExistsError`` for every writer but the
        first, so a reclaimed job's slow original worker and its retry
        can both try to close the job, and exactly one receipt ever
        exists.
        """
        path = self._receipt_path(receipt.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    receipt.to_record(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
            try:
                os.link(tmp_name, path)
            except FileExistsError:
                return False
            # Only the winning writer journals the receipt, so receipt
            # events reconcile 1:1 with the receipts on disk.
            self.emit(
                "job.receipt",
                job_id=receipt.job_id,
                kind=receipt.kind,
                status=receipt.status,
                attempt=receipt.attempt,
                worker=receipt.worker or None,
                seconds=receipt.seconds,
                config_fingerprint=receipt.config_fingerprint,
            )
            return True
        finally:
            os.unlink(tmp_name)

    def receipt(self, job_id: str) -> Optional[JobReceipt]:
        """The job's terminal receipt, or ``None`` while it is open."""
        path = self._receipt_path(job_id)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise JobError(f"{path}: corrupt receipt: {exc}") from exc
        return JobReceipt.from_record(record)

    def receipts(self) -> List[JobReceipt]:
        """Every receipt in the queue, ordered by job id."""
        return [
            JobReceipt.from_record(json.loads(path.read_text()))
            for path in sorted(self.receipts_dir.glob("*/*.json"))
        ]

    # -- status -------------------------------------------------------

    def pending_ids(self) -> List[str]:
        return sorted(p.stem for p in self.pending_dir.glob("*.json"))

    def active_ids(self) -> List[str]:
        return sorted(p.stem for p in self.active_dir.glob("*.json"))

    def is_drained(self) -> bool:
        """True when every submitted job has reached a terminal state."""
        return not self.pending_ids() and not self.active_ids()

    def counts(self) -> Dict[str, int]:
        """Pending/active/terminal tallies for status displays."""
        tallies = {
            "pending": len(self.pending_ids()),
            "active": len(self.active_ids()),
            "ok": 0,
            "failed": 0,
            "exhausted": 0,
        }
        for receipt in self.receipts():
            tallies[receipt.status] += 1
        return tallies
