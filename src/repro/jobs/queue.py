"""Persistent file-backed work queue with crash-safe leases.

One queue is one directory; every transition is a POSIX rename, so any
number of submitter, worker, and reclaimer processes can share it with
no daemon and no database:

```
<root>/
  spool.jsonl           append-only submission log (audit trail)
  pending/<id>.json     submitted, unclaimed job records
  active/<id>.json      leased jobs; mtime = lease start
  receipts/<aa>/<id>.json   exactly-once terminal receipts
  artifacts/<aa>/<id>.pkl   pickled job results, content-addressed
```

The invariants:

* **claim-by-rename** — a worker claims a job by renaming
  ``pending/<id>.json`` to ``active/<id>.json``; the rename either
  succeeds for exactly one claimant or raises ``FileNotFoundError``
  for the losers. The fresh lease's clock starts with an ``utime``.
* **lease timeout** — a worker that dies mid-job leaves its active
  file behind; :meth:`JobQueue.reclaim_expired` takes it over with
  another rename (to a stash name, so two reclaimers cannot both
  requeue it), bumps the attempt count, and either requeues the job or
  writes an ``exhausted`` receipt when attempts run out.
* **idempotent retry** — the job id is the fingerprint of the job's
  kind and payload, so resubmitting the same work is a no-op once a
  successful receipt exists, and a resumed sweep can find its finished
  cells by recomputing their ids.
* **exactly-once receipts** — receipts are published with
  ``os.link`` (fails with ``EEXIST`` for every writer but the first),
  so a slow worker finishing after its lease was reclaimed cannot
  overwrite the retry's receipt.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import JobError
from repro.jobs.receipts import JobReceipt, exhausted_receipt
from repro.observability import metrics
from repro.runtime.fingerprint import fingerprint
from repro.runtime.locking import append_line

JOB_SCHEMA = "repro.job/v1"

PathLike = Union[str, Path]


def job_id_for(kind: str, payload: Mapping[str, Any]) -> str:
    """The content-derived job id: same work, same id, any process."""
    return fingerprint("job", kind, dict(payload))


class JobQueue:
    """One work-queue directory and this handle's view of it."""

    def __init__(
        self,
        root: PathLike,
        *,
        lease_seconds: float = 300.0,
        max_attempts: int = 3,
    ) -> None:
        if lease_seconds <= 0:
            raise JobError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        if max_attempts < 1:
            raise JobError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.root = Path(root)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.spool_path = self.root / "spool.jsonl"
        self.pending_dir = self.root / "pending"
        self.active_dir = self.root / "active"
        self.receipts_dir = self.root / "receipts"
        self.artifacts_dir = self.root / "artifacts"
        for directory in (
            self.pending_dir,
            self.active_dir,
            self.receipts_dir,
            self.artifacts_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -- addressing ---------------------------------------------------

    def _pending_path(self, job_id: str) -> Path:
        return self.pending_dir / f"{job_id}.json"

    def _active_path(self, job_id: str) -> Path:
        return self.active_dir / f"{job_id}.json"

    def _receipt_path(self, job_id: str) -> Path:
        return self.receipts_dir / job_id[:2] / f"{job_id}.json"

    def _artifact_path(self, job_id: str) -> Path:
        return self.artifacts_dir / job_id[:2] / f"{job_id}.pkl"

    # -- submission ---------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: Mapping[str, Any],
        *,
        retry: bool = False,
    ) -> str:
        """Queue one job; returns its content-derived id.

        Submission is idempotent: a job whose successful receipt
        already exists, or that is already pending or leased, is not
        queued again. A job with a ``failed``/``exhausted`` receipt is
        terminal and stays terminal unless ``retry=True``, which drops
        the old receipt and queues a fresh attempt.
        """
        record = {
            "schema": JOB_SCHEMA,
            "id": job_id_for(kind, payload),
            "kind": kind,
            "payload": dict(payload),
            "attempt": 0,
            "submitted_at": time.time(),
        }
        job_id = record["id"]
        receipt = self.receipt(job_id)
        if receipt is not None:
            if receipt.ok or not retry:
                return job_id
            self._receipt_path(job_id).unlink(missing_ok=True)
        if self._pending_path(job_id).exists() or (
            self._active_path(job_id).exists()
        ):
            return job_id
        self._write_pending(record)
        append_line(self.spool_path, json.dumps(record, sort_keys=True))
        metrics.counter("jobs.submitted").inc()
        return job_id

    def _write_pending(self, record: Mapping[str, Any]) -> None:
        """Publish a complete pending file with tmp-write + rename."""
        path = self._pending_path(record["id"])
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- leasing ------------------------------------------------------

    def claim(self, worker_id: str = "") -> Optional[Dict[str, Any]]:
        """Lease one pending job, or ``None`` if nothing is claimable.

        The rename is the lock: of any number of concurrent claimants,
        exactly one sees it succeed; the rest get ``FileNotFoundError``
        and move on to the next pending file.
        """
        for path in sorted(self.pending_dir.glob("*.json")):
            target = self.active_dir / path.name
            try:
                os.rename(path, target)
                os.utime(target)  # lease clock starts now, not at submit
                return json.loads(target.read_text())
            except FileNotFoundError:
                continue  # lost the race (or an immediate reclaim)
        return None

    def release(self, job_id: str) -> None:
        """Drop a lease after its receipt is written.

        Releasing a lease that was already reclaimed (or that a stale
        worker releases on behalf of a newer lease) is benign: the
        job's terminal state lives in its exactly-once receipt, never
        in the lease file.
        """
        try:
            self._active_path(job_id).unlink()
        except FileNotFoundError:
            pass

    def reclaim_expired(self, *, force: bool = False) -> int:
        """Take over dead workers' leases; returns the number requeued.

        A lease older than ``lease_seconds`` (or any lease, with
        ``force=True`` — used by the pool after all its workers have
        been joined) is atomically renamed to a stash name, so
        concurrent reclaimers cannot both requeue the same job. A job
        whose receipt appeared in the meantime was finished by a slow
        worker and is simply dropped; otherwise its attempt count is
        bumped and it is either requeued or, out of attempts, closed
        with an ``exhausted`` receipt.
        """
        now = time.time()
        requeued = 0
        for path in sorted(self.active_dir.glob("*.json")):
            try:
                age = now - path.stat().st_mtime
            except FileNotFoundError:
                continue  # completed while we scanned
            if not force and age <= self.lease_seconds:
                continue
            stash = path.with_suffix(".reclaim")
            try:
                os.rename(path, stash)
            except FileNotFoundError:
                continue  # finished, or another reclaimer won
            try:
                record = json.loads(stash.read_text())
                job_id = record["id"]
                if self.receipt(job_id) is not None:
                    continue  # slow worker finished; lease was litter
                record["attempt"] = int(record.get("attempt", 0)) + 1
                if record["attempt"] >= self.max_attempts:
                    self.write_receipt(
                        exhausted_receipt(
                            job_id, record["kind"], record["attempt"]
                        )
                    )
                else:
                    self._write_pending(record)
                    requeued += 1
            finally:
                stash.unlink(missing_ok=True)
        return requeued

    # -- artifacts and receipts ---------------------------------------

    def store_artifact(self, job_id: str, value: Any) -> str:
        """Persist a job's result; returns its SHA-256 content hash."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._artifact_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return hashlib.sha256(payload).hexdigest()

    def load_artifact(self, job_id: str) -> Any:
        """Unpickle a finished job's stored result."""
        path = self._artifact_path(job_id)
        try:
            return pickle.loads(path.read_bytes())
        except FileNotFoundError:
            raise JobError(
                f"{self.root}: no artifact for job {job_id[:12]}"
            ) from None

    def write_receipt(self, receipt: JobReceipt) -> bool:
        """Publish a receipt exactly once; True iff this writer won.

        ``os.link`` of a fully-written temp file is the commit point:
        it fails with ``FileExistsError`` for every writer but the
        first, so a reclaimed job's slow original worker and its retry
        can both try to close the job, and exactly one receipt ever
        exists.
        """
        path = self._receipt_path(receipt.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    receipt.to_record(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
            try:
                os.link(tmp_name, path)
            except FileExistsError:
                return False
            return True
        finally:
            os.unlink(tmp_name)

    def receipt(self, job_id: str) -> Optional[JobReceipt]:
        """The job's terminal receipt, or ``None`` while it is open."""
        path = self._receipt_path(job_id)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise JobError(f"{path}: corrupt receipt: {exc}") from exc
        return JobReceipt.from_record(record)

    def receipts(self) -> List[JobReceipt]:
        """Every receipt in the queue, ordered by job id."""
        return [
            JobReceipt.from_record(json.loads(path.read_text()))
            for path in sorted(self.receipts_dir.glob("*/*.json"))
        ]

    # -- status -------------------------------------------------------

    def pending_ids(self) -> List[str]:
        return sorted(p.stem for p in self.pending_dir.glob("*.json"))

    def active_ids(self) -> List[str]:
        return sorted(p.stem for p in self.active_dir.glob("*.json"))

    def is_drained(self) -> bool:
        """True when every submitted job has reached a terminal state."""
        return not self.pending_ids() and not self.active_ids()

    def counts(self) -> Dict[str, int]:
        """Pending/active/terminal tallies for status displays."""
        tallies = {
            "pending": len(self.pending_ids()),
            "active": len(self.active_ids()),
            "ok": 0,
            "failed": 0,
            "exhausted": 0,
        }
        for receipt in self.receipts():
            tallies[receipt.status] += 1
        return tallies
