"""Typed job receipts: one job's provenance, written exactly once.

A :class:`JobReceipt` is the job service's unit of proof. Every job —
succeeded, failed, or abandoned after too many lost leases — ends in
exactly one receipt stored content-addressed next to the artifacts
(``receipts/<aa>/<job-id>.json``). The receipt records what ran (the
equivalent command and the config fingerprint), what it consumed
(input hashes), what it produced (artifact hashes), how long it took,
how many executions were started, and how it ended — enough to decide,
without re-running anything, whether a sweep can resume from this job
or must retry it, and enough for the run ledger's drift sentinel to
gate on failure and retry rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import JobError

RECEIPT_SCHEMA = "repro.receipt/v1"

#: The terminal states a job can reach. ``ok`` and ``failed`` are
#: written by the worker that executed the attempt; ``exhausted`` is
#: written by the reclaimer when a job has burned every allowed
#: attempt without a worker surviving long enough to write a receipt.
RECEIPT_STATUSES = ("ok", "failed", "exhausted")


@dataclass(frozen=True)
class JobReceipt:
    """The immutable record of one job's terminal state."""

    job_id: str
    kind: str
    status: str
    attempt: int
    worker: str = ""
    seconds: float = 0.0
    command: List[str] = field(default_factory=list)
    config_fingerprint: Optional[str] = None
    input_hashes: Dict[str, str] = field(default_factory=dict)
    artifact_hashes: Dict[str, str] = field(default_factory=dict)
    #: Sim-result cache tallies of the successful execution
    #: (hits/misses/stale_evictions); empty for failed jobs and for
    #: receipts written before the field existed.
    sim_cache: Dict[str, int] = field(default_factory=dict)
    #: Clustering cache tallies, same contract as ``sim_cache``.
    clustering_cache: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in RECEIPT_STATUSES:
            raise JobError(
                f"receipt status must be one of {RECEIPT_STATUSES}, "
                f"got {self.status!r}"
            )
        if self.attempt < 1:
            raise JobError(
                f"receipt attempt must be >= 1, got {self.attempt}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def retries(self) -> int:
        """Executions beyond the first (what the sentinel rates)."""
        return max(0, self.attempt - 1)

    def to_record(self) -> Dict[str, Any]:
        return {
            "schema": RECEIPT_SCHEMA,
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "attempt": self.attempt,
            "worker": self.worker,
            "seconds": self.seconds,
            "command": list(self.command),
            "config_fingerprint": self.config_fingerprint,
            "input_hashes": dict(self.input_hashes),
            "artifact_hashes": dict(self.artifact_hashes),
            "sim_cache": dict(self.sim_cache),
            "clustering_cache": dict(self.clustering_cache),
            "error": self.error,
            "created_at": self.created_at,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "JobReceipt":
        if record.get("schema") != RECEIPT_SCHEMA:
            raise JobError(
                f"not a {RECEIPT_SCHEMA} record: "
                f"schema={record.get('schema')!r}"
            )
        return cls(
            job_id=record["job_id"],
            kind=record["kind"],
            status=record["status"],
            attempt=int(record["attempt"]),
            worker=record.get("worker", ""),
            seconds=float(record.get("seconds", 0.0)),
            command=list(record.get("command") or []),
            config_fingerprint=record.get("config_fingerprint"),
            input_hashes=dict(record.get("input_hashes") or {}),
            artifact_hashes=dict(record.get("artifact_hashes") or {}),
            sim_cache={
                key: int(value)
                for key, value in (record.get("sim_cache") or {}).items()
            },
            clustering_cache={
                key: int(value)
                for key, value in (
                    record.get("clustering_cache") or {}
                ).items()
            },
            error=record.get("error"),
            created_at=float(record.get("created_at", 0.0)),
        )


def exhausted_receipt(
    job_id: str, kind: str, attempt: int, worker: str = "reclaimer"
) -> JobReceipt:
    """The receipt the reclaimer writes for a job out of attempts."""
    return JobReceipt(
        job_id=job_id,
        kind=kind,
        status="exhausted",
        attempt=attempt,
        worker=worker,
        error=(
            f"lease lost {attempt} time(s); no worker survived to "
            f"complete the job"
        ),
        created_at=time.time(),
    )
