"""Bayesian Information Criterion scoring of clusterings (paper step 4).

SimPoint scores each candidate clustering with the BIC formulation of
Pelleg & Moore's X-means (the paper's reference [12]): the clustering's
log-likelihood under a spherical-Gaussian mixture, penalized by the
parameter count times ``log N``. We generalize to weighted points —
each interval contributes proportionally to its executed instructions —
which reduces to the classic formula when all weights are equal
(fixed-length intervals).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ClusteringError
from repro.simpoint.kmeans import KMeansResult

#: Floor on the estimated variance to keep degenerate (perfectly tight)
#: clusterings from producing infinite likelihoods.
_VARIANCE_FLOOR = 1e-12


def bic_score(
    points: np.ndarray,
    result: KMeansResult,
    weights: Optional[np.ndarray] = None,
) -> float:
    """BIC of a k-means clustering; higher is better.

    ``points`` must be the same matrix the clustering was computed on.
    """
    n, d = points.shape
    if result.labels.shape != (n,):
        raise ClusteringError("labels do not match the point matrix")
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    total_weight = float(weights.sum())
    if total_weight <= 0:
        raise ClusteringError("weights must have positive sum")
    k = result.k
    # Weighted maximum-likelihood estimate of the shared spherical
    # variance. The (N - k) denominator is Pelleg & Moore's unbiased
    # correction.
    denom = max(total_weight - k, 1e-9) * d
    variance = max(result.inertia / denom, _VARIANCE_FLOOR)

    log_likelihood = 0.0
    for cluster in range(k):
        members = result.labels == cluster
        cluster_weight = float(weights[members].sum())
        if cluster_weight <= 0:
            continue
        # n_i log(n_i / N): cluster prior term.
        log_likelihood += cluster_weight * math.log(
            cluster_weight / total_weight
        )
    # Gaussian term: -N d/2 log(2 pi sigma^2) - (N - k) d / 2.
    log_likelihood -= 0.5 * total_weight * d * math.log(2.0 * math.pi * variance)
    log_likelihood -= 0.5 * (total_weight - k) * d

    # Parameter count: k-1 cluster priors, k*d centroid coordinates,
    # one shared variance.
    n_params = (k - 1) + k * d + 1
    return log_likelihood - 0.5 * n_params * math.log(total_weight)
