"""Early simulation points (Perelman, Hamerly & Calder, PACT 2003).

The paper's reference [13]: when fast-forwarding to a simulation point
dominates turnaround time, it pays to pick, per cluster, not the
interval *closest* to the centroid but the **earliest** interval that
is still acceptably close. This trades a little representativeness for
a (often much) earlier final simulation point.

``pick_early_simulation_points`` implements the selection rule: a
cluster member qualifies when its distance to the centroid is within
``(1 + tolerance)`` of the cluster's best distance (plus an absolute
epsilon for zero-distance clusters); the earliest qualifying interval
becomes the simulation point. ``tolerance=0`` reduces to classic
SimPoint selection up to tie-breaking, which here *is* earliest-first —
the whole purpose of the variant.

``run_early_simpoint`` is the facade: same pipeline as
:func:`repro.simpoint.simpoint.run_simpoint`, early selection at the
end, plus the earliness metric (the last chosen interval's position in
the run, which bounds how far detailed simulation must reach).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ClusteringError
from repro.profiling.intervals import Interval
from repro.simpoint.clustercache import cached_choose_clustering
from repro.simpoint.projection import project
from repro.simpoint.select import RepresentativePick
from repro.simpoint.simpoint import (
    SimPointConfig,
    SimPointResult,
    SimulationPoint,
)
from repro.simpoint.vectors import build_vector_set

_ABS_EPSILON = 1e-12


def pick_early_simulation_points(
    points: np.ndarray,
    weights: np.ndarray,
    result,
    tolerance: float = 0.3,
) -> Tuple[RepresentativePick, ...]:
    """Pick the earliest acceptable representative per cluster.

    ``tolerance`` is the fractional slack on the squared distance to
    the centroid: any member within ``(1 + tolerance) * best`` may be
    chosen, and the earliest one is.
    """
    if tolerance < 0:
        raise ClusteringError(
            f"tolerance must be non-negative, got {tolerance}"
        )
    total_weight = float(weights.sum())
    picks: List[RepresentativePick] = []
    for cluster in range(result.k):
        members = np.flatnonzero(result.labels == cluster)
        if members.size == 0:
            continue
        diffs = points[members] - result.centroids[cluster]
        distances = np.einsum("nd,nd->n", diffs, diffs)
        best = float(distances.min())
        limit = best * (1.0 + tolerance) + _ABS_EPSILON
        qualifying = members[distances <= limit]
        representative = int(qualifying.min())
        cluster_weight = float(weights[members].sum()) / total_weight
        picks.append(
            RepresentativePick(
                cluster=cluster,
                interval_index=representative,
                weight=cluster_weight,
            )
        )
    return tuple(picks)


@dataclass(frozen=True)
class EarlySimPointResult:
    """Early-selection result plus its earliness metrics."""

    result: SimPointResult
    tolerance: float
    last_point_index: int
    classic_last_point_index: int

    @property
    def earliness_gain(self) -> int:
        """How many intervals earlier the last simulation point landed
        compared to classic closest-to-centroid selection."""
        return self.classic_last_point_index - self.last_point_index


def run_early_simpoint(
    intervals: Sequence[Interval],
    config: SimPointConfig = SimPointConfig(),
    tolerance: float = 0.3,
    *,
    jobs: "int | None" = None,
) -> EarlySimPointResult:
    """SimPoint with early representative selection.

    Clustering (and therefore phase labels, k, and weights) is
    identical to :func:`~repro.simpoint.simpoint.run_simpoint` with
    exhaustive search; only the representative choice differs — so
    early sweeps share cached clusterings with the classic pipeline.
    """
    vector_set = build_vector_set(intervals)
    projected = project(
        vector_set.matrix, config.dimensions, config.projection_seed
    )
    choice = cached_choose_clustering(
        projected,
        vector_set.weights,
        max_k=config.max_k,
        bic_threshold=config.bic_threshold,
        n_init=config.n_init,
        max_iter=config.max_iter,
        seed=config.kmeans_seed,
        k_search="exhaustive",
        jobs=jobs,
    )
    early_picks = pick_early_simulation_points(
        projected, vector_set.weights, choice.result, tolerance
    )
    classic_picks = pick_early_simulation_points(
        projected, vector_set.weights, choice.result, tolerance=0.0
    )
    points = tuple(
        SimulationPoint(
            cluster=pick.cluster,
            interval_index=pick.interval_index,
            weight=pick.weight,
        )
        for pick in early_picks
    )
    result = SimPointResult(
        points=points,
        labels=tuple(int(label) for label in choice.result.labels),
        k=choice.k,
        bic_scores=choice.bic_scores,
        interval_instructions=tuple(
            interval.instructions for interval in intervals
        ),
    )
    return EarlySimPointResult(
        result=result,
        tolerance=tolerance,
        last_point_index=max(p.interval_index for p in early_picks),
        classic_last_point_index=max(
            p.interval_index for p in classic_picks
        ),
    )
