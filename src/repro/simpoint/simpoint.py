"""The SimPoint facade: intervals in, simulation points out.

:func:`run_simpoint` wires the pipeline together exactly as the paper's
Section 2.3 describes: normalize, project, cluster over a range of k,
choose by BIC, pick per-cluster representatives and weights. It is
agnostic to how the intervals were produced, so the same facade serves
both the per-binary FLI pipeline and the cross-binary VLI pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ClusteringError
from repro.profiling.intervals import Interval
from repro.runtime.cache import ProfileCache
from repro.simpoint.clustercache import cached_choose_clustering
from repro.simpoint.projection import DEFAULT_DIMENSIONS, project
from repro.simpoint.select import pick_simulation_points
from repro.simpoint.vectors import build_vector_set


@dataclass(frozen=True)
class SimPointConfig:
    """SimPoint 3.0 knobs, at their customary defaults.

    ``max_k`` is the paper's cluster budget (they use 10);
    ``bic_threshold`` is the fraction of the best normalized BIC a
    clustering must reach to be eligible (smallest such k wins).
    """

    max_k: int = 10
    dimensions: int = DEFAULT_DIMENSIONS
    bic_threshold: float = 0.9
    n_init: int = 5
    max_iter: int = 100
    projection_seed: int = 2007
    kmeans_seed: int = 0
    k_search: str = "exhaustive"  # or "binary" (SimPoint 3.0's search)

    def __post_init__(self) -> None:
        if self.max_k < 1:
            raise ClusteringError(f"max_k must be >= 1, got {self.max_k}")
        if self.dimensions < 1:
            raise ClusteringError(
                f"dimensions must be >= 1, got {self.dimensions}"
            )
        if self.k_search not in ("exhaustive", "binary"):
            raise ClusteringError(
                f"k_search must be 'exhaustive' or 'binary', "
                f"got {self.k_search!r}"
            )


@dataclass(frozen=True)
class SimulationPoint:
    """One chosen simulation point.

    ``interval_index`` indexes into the interval list SimPoint was run
    on; ``weight`` is the fraction of executed instructions its phase
    represents in the profiled binary.
    """

    cluster: int
    interval_index: int
    weight: float


@dataclass(frozen=True)
class SimPointResult:
    """Everything SimPoint produces for one interval set."""

    points: Tuple[SimulationPoint, ...]
    labels: Tuple[int, ...]
    k: int
    bic_scores: Tuple[float, ...]
    interval_instructions: Tuple[int, ...]

    @property
    def n_points(self) -> int:
        return len(self.points)

    def phase_of(self, interval_index: int) -> int:
        return self.labels[interval_index]

    def weight_of_cluster(self, cluster: int) -> float:
        for point in self.points:
            if point.cluster == cluster:
                return point.weight
        raise ClusteringError(f"no simulation point for cluster {cluster}")


def run_simpoint(
    intervals: Sequence[Interval],
    config: SimPointConfig = SimPointConfig(),
    *,
    jobs: "int | None" = None,
    cache: "ProfileCache | None" = None,
    use_clustering_cache: "bool | None" = None,
) -> SimPointResult:
    """Run the full SimPoint pipeline over profiled intervals.

    ``jobs`` fans the clustering stage's (k, restart) tasks over worker
    processes; ``cache`` / ``use_clustering_cache`` control
    content-keyed clustering reuse (defaults: the runtime
    configuration). All combinations are bit-identical.
    """
    vector_set = build_vector_set(intervals)
    projected = project(
        vector_set.matrix, config.dimensions, config.projection_seed
    )
    choice = cached_choose_clustering(
        projected,
        vector_set.weights,
        max_k=config.max_k,
        bic_threshold=config.bic_threshold,
        n_init=config.n_init,
        max_iter=config.max_iter,
        seed=config.kmeans_seed,
        k_search=config.k_search,
        jobs=jobs,
        cache=cache,
        use_clustering_cache=use_clustering_cache,
    )
    picks = pick_simulation_points(
        projected, vector_set.weights, choice.result
    )
    points = tuple(
        SimulationPoint(
            cluster=pick.cluster,
            interval_index=pick.interval_index,
            weight=pick.weight,
        )
        for pick in picks
    )
    return SimPointResult(
        points=points,
        labels=tuple(int(label) for label in choice.result.labels),
        k=choice.k,
        bic_scores=choice.bic_scores,
        interval_instructions=tuple(
            interval.instructions for interval in intervals
        ),
    )
