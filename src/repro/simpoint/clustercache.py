"""Content-keyed reuse of chosen clusterings.

With profiling compiled (PR 4) and detailed simulation content-keyed
(PR 8), the `choose_clustering` sweep — k-means at every probed k,
restarted ``n_init`` times — is the dominant recomputed cost whenever
the same profile is clustered again: repeated sweeps, selector
comparisons, and ``--via-jobs`` reruns all cluster identical projected
BBVs with identical knobs. This module keys the whole
:class:`~repro.simpoint.select.ClusteringChoice` by *content* and
stores it as a dedicated :data:`CLUSTERING_KIND` kind in the
:class:`~repro.runtime.cache.ProfileCache`.

The key covers everything that can influence the choice: the projected
BBV matrix and interval weights (by shape, dtype, and content digest —
projection dimensions and seed are therefore covered through the
matrix itself), the k budget, the BIC threshold, ``n_init`` /
``max_iter`` / seed, and the search strategy. The format-version salt
is applied by the cache on every key. ``jobs`` and ``use_pruned`` are
deliberately *not* part of the key: pruned/reference and
parallel/serial paths are bit-identical (the equivalence tests enforce
it), so any of them may satisfy another's lookup.

Reuse is on whenever a profile cache is active and can be vetoed per
call (``use_clustering_cache=False``), per process
(``--no-clustering-cache``), or per environment
(``REPRO_NO_CLUSTERING_CACHE=1``) without touching the profiling
caches. Every lookup lands in the
``cache.clustering.{hits,misses,stale_evictions}`` metric counters —
the kind name is chosen so the cache's automatic per-kind counters
(``cache.<kind>.*``) double as the manifest's clustering summary, with
no mirroring layer (unlike ``cache.sim.*``, which aliases the
``simresult`` kind and must be mirrored by hand).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

import numpy as np

from repro.errors import ClusteringError
from repro.runtime.cache import ProfileCache
from repro.runtime.config import active_cache, clustering_cache_enabled
from repro.simpoint.select import (
    ClusteringChoice,
    choose_clustering,
    choose_clustering_binary_search,
)

#: ProfileCache kind under which chosen clusterings live. Also the
#: metric-counter namespace: the cache emits ``cache.clustering.*``
#: for this kind on its own.
CLUSTERING_KIND = "clustering"


def _array_material(array: np.ndarray) -> Tuple[Tuple[int, ...], str, str]:
    """Fingerprintable identity of an array: shape, dtype, content digest.

    :func:`~repro.runtime.fingerprint.fingerprint` has no ndarray
    encoding (deliberately — ambient array support would make silent
    key collisions too easy), so array-valued key material is reduced
    here to primitives that pin down the exact buffer.
    """
    data = np.ascontiguousarray(array)
    return (
        tuple(int(dim) for dim in data.shape),
        str(data.dtype),
        hashlib.sha256(data.tobytes()).hexdigest(),
    )


def clustering_key(
    points: np.ndarray,
    weights: np.ndarray,
    *,
    max_k: int,
    bic_threshold: float,
    n_init: int,
    max_iter: int,
    seed: int,
    k_search: str,
) -> Tuple:
    """Key material for one ``choose_clustering`` invocation."""
    return (
        "clustering-choice",
        _array_material(np.asarray(points)),
        _array_material(np.asarray(weights, dtype=np.float64)),
        int(max_k),
        float(bic_threshold),
        int(n_init),
        int(max_iter),
        int(seed),
        str(k_search),
    )


def cached_choose_clustering(
    points: np.ndarray,
    weights: np.ndarray,
    *,
    max_k: int,
    bic_threshold: float = 0.9,
    n_init: int = 5,
    max_iter: int = 100,
    seed: int = 0,
    k_search: str = "exhaustive",
    use_pruned: Optional[bool] = None,
    jobs: Optional[int] = None,
    cache: Optional[ProfileCache] = None,
    use_clustering_cache: Optional[bool] = None,
) -> ClusteringChoice:
    """The BIC-chosen clustering for one projected profile, cached.

    Dispatches to :func:`choose_clustering` (``k_search="exhaustive"``)
    or :func:`choose_clustering_binary_search` (``"binary"``); the
    search strategy is part of the key because the two report different
    BIC traces (and may choose different k on non-monotone curves).
    Determinism makes a cached value bit-identical to recomputing it.
    """
    if k_search not in ("exhaustive", "binary"):
        raise ClusteringError(
            f"k_search must be 'exhaustive' or 'binary', got {k_search!r}"
        )
    chooser = (
        choose_clustering
        if k_search == "exhaustive"
        else choose_clustering_binary_search
    )

    def compute() -> ClusteringChoice:
        return chooser(
            points,
            weights,
            max_k=max_k,
            bic_threshold=bic_threshold,
            n_init=n_init,
            max_iter=max_iter,
            seed=seed,
            use_pruned=use_pruned,
            jobs=jobs,
        )

    if cache is None:
        cache = active_cache()
    if cache is None or not clustering_cache_enabled(use_clustering_cache):
        return compute()
    key = clustering_key(
        points,
        weights,
        max_k=max_k,
        bic_threshold=bic_threshold,
        n_init=n_init,
        max_iter=max_iter,
        seed=seed,
        k_search=k_search,
    )
    return cache.get_or_compute(CLUSTERING_KIND, key, compute)
