"""SimPoint 3.0 reimplementation.

The phase-clustering pipeline of Sherwood et al. / Hamerly et al. as
used by the paper (Section 2.3):

1. normalize each interval's basic block vector
   (:mod:`repro.simpoint.vectors`);
2. randomly project to 15 dimensions (:mod:`repro.simpoint.projection`);
3. run weighted k-means for a range of k
   (:mod:`repro.simpoint.kmeans`) — weights support SimPoint 3.0's
   variable-length intervals;
4. score clusterings with the Bayesian Information Criterion
   (:mod:`repro.simpoint.bic`) and pick the smallest k whose score is
   close to the best (:mod:`repro.simpoint.select`);
5. pick the interval closest to each cluster centroid as that phase's
   simulation point, weighted by the phase's share of executed
   instructions.

:func:`repro.simpoint.simpoint.run_simpoint` is the facade.
"""

from repro.simpoint.bic import bic_score
from repro.simpoint.clustercache import (
    CLUSTERING_KIND,
    cached_choose_clustering,
    clustering_key,
)
from repro.simpoint.early import (
    EarlySimPointResult,
    pick_early_simulation_points,
    run_early_simpoint,
)
from repro.simpoint.kmeans import KMeansResult, weighted_kmeans
from repro.simpoint.projection import project, projection_matrix
from repro.simpoint.select import (
    choose_clustering,
    choose_clustering_binary_search,
    pick_simulation_points,
)
from repro.simpoint.simpoint import (
    SimPointConfig,
    SimPointResult,
    SimulationPoint,
    run_simpoint,
)
from repro.simpoint.vectors import VectorSet, build_vector_set

__all__ = [
    "bic_score",
    "CLUSTERING_KIND",
    "cached_choose_clustering",
    "clustering_key",
    "EarlySimPointResult",
    "pick_early_simulation_points",
    "run_early_simpoint",
    "choose_clustering_binary_search",
    "KMeansResult",
    "weighted_kmeans",
    "project",
    "projection_matrix",
    "choose_clustering",
    "pick_simulation_points",
    "SimPointConfig",
    "SimPointResult",
    "SimulationPoint",
    "run_simpoint",
    "VectorSet",
    "build_vector_set",
]
