"""Random linear projection (paper step 2).

SimPoint reduces BBV dimensionality (often tens of thousands of basic
blocks) to a small number of dimensions — 15 by default — using a random
linear projection, which approximately preserves the cluster structure
(Johnson-Lindenstrauss) while making k-means fast. Projection entries
are drawn uniformly from [-1, 1] with a fixed seed, so the projection
is deterministic for a given input dimensionality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError

#: SimPoint 3.0's default projected dimensionality.
DEFAULT_DIMENSIONS = 15


def projection_matrix(
    input_dims: int, output_dims: int = DEFAULT_DIMENSIONS, seed: int = 2007
) -> np.ndarray:
    """A deterministic (input_dims x output_dims) projection matrix."""
    if input_dims <= 0 or output_dims <= 0:
        raise ClusteringError(
            f"projection dims must be positive, got {input_dims}x{output_dims}"
        )
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(input_dims, output_dims))


def project(
    matrix: np.ndarray, output_dims: int = DEFAULT_DIMENSIONS, seed: int = 2007
) -> np.ndarray:
    """Project row vectors down to ``output_dims`` dimensions.

    If the data already has no more than ``output_dims`` dimensions it
    is returned unchanged (projection would only add noise).
    """
    if matrix.ndim != 2:
        raise ClusteringError("project expects a 2-D matrix")
    if matrix.shape[1] <= output_dims:
        return matrix
    return matrix @ projection_matrix(matrix.shape[1], output_dims, seed)
