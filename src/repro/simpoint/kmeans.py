"""Weighted k-means clustering (paper step 3).

A from-scratch Lloyd's-algorithm k-means with:

* **weights** — each point (interval) counts proportionally to its
  executed instructions, which is how SimPoint 3.0 "considers the
  number of instructions in each interval during the clustering
  process" for variable-length intervals;
* **k-means++ seeding** (weighted) with several restarts;
* **empty-cluster repair** — an emptied cluster is reseeded on the
  point farthest from its centroid.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ClusteringError


@dataclass(frozen=True)
class KMeansResult:
    """One clustering: centroids, per-point labels, weighted inertia."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """(n x k) matrix of squared euclidean distances.

    Expanded as ``||x||^2 - 2 x.c + ||c||^2`` so the dominant term is a
    single GEMM and peak memory is O(n*k) instead of the O(n*k*d)
    broadcast of explicit differences. The expansion can go slightly
    negative under floating-point cancellation, so it is clamped at 0.
    """
    point_norms = np.einsum("nd,nd->n", points, points)
    centroid_norms = np.einsum("kd,kd->k", centroids, centroids)
    distances = point_norms[:, None] - 2.0 * (points @ centroids.T)
    distances += centroid_norms[None, :]
    return np.maximum(distances, 0.0, out=distances)


def _kmeanspp_init(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    n = points.shape[0]
    first = int(rng.choice(n, p=weights / weights.sum()))
    centroids = [points[first]]
    closest = _squared_distances(points, points[first][None, :])[:, 0]
    for _ in range(1, k):
        scores = closest * weights
        total = scores.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids; any
            # choice yields the same clustering.
            index = int(rng.integers(n))
        else:
            index = int(rng.choice(n, p=scores / total))
        centroid = points[index]
        centroids.append(centroid)
        dist = _squared_distances(points, centroid[None, :])[:, 0]
        np.minimum(closest, dist, out=closest)
    return np.stack(centroids)


def _lloyd(
    points: np.ndarray,
    weights: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
) -> KMeansResult:
    k = centroids.shape[0]
    labels = np.full(points.shape[0], -1, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        distances = _squared_distances(points, centroids)
        new_labels = distances.argmin(axis=1)
        # Empty-cluster repair: reseed on the overall farthest point.
        # ``point_dists`` (each point's distance to its own centroid) is
        # masked after every repair: the reseeded point now sits *on* its
        # centroid, so a second empty cluster must pick a different point
        # instead of re-stealing the same one through stale distances.
        point_dists: Optional[np.ndarray] = None
        for cluster in range(k):
            if not np.any(new_labels == cluster):
                if point_dists is None:
                    point_dists = distances[
                        np.arange(len(new_labels)), new_labels
                    ].copy()
                farthest = int(point_dists.argmax())
                new_labels[farthest] = cluster
                centroids[cluster] = points[farthest]
                point_dists[farthest] = 0.0
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for cluster in range(k):
            members = labels == cluster
            member_weights = weights[members]
            total = member_weights.sum()
            if total > 0:
                centroids[cluster] = (
                    points[members] * member_weights[:, None]
                ).sum(axis=0) / total
    distances = _squared_distances(points, centroids)
    inertia = float(
        (distances[np.arange(len(labels)), labels] * weights).sum()
    )
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia,
        iterations=iterations,
    )


def weighted_kmeans(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    n_init: int = 5,
    max_iter: int = 100,
    seed: int = 0,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` clusters, minimizing weighted inertia.

    Runs ``n_init`` k-means++-seeded restarts and returns the best.
    Raises :class:`~repro.errors.ClusteringError` if ``k`` exceeds the
    number of points or parameters are out of range.
    """
    if points.ndim != 2 or points.shape[0] == 0:
        raise ClusteringError("weighted_kmeans expects a non-empty 2-D array")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (n,):
        raise ClusteringError("weights must be one per point")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ClusteringError("weights must be non-negative with positive sum")
    if k == 1:
        centroid = (points * weights[:, None]).sum(axis=0) / weights.sum()
        diffs = points - centroid
        inertia = float(
            (np.einsum("nd,nd->n", diffs, diffs) * weights).sum()
        )
        return KMeansResult(
            centroids=centroid[None, :],
            labels=np.zeros(n, dtype=np.int64),
            inertia=inertia,
            iterations=1,
        )
    rng = np.random.default_rng(seed)
    best: Optional[KMeansResult] = None
    for _ in range(max(1, n_init)):
        centroids = _kmeanspp_init(points, weights, k, rng).copy()
        result = _lloyd(points, weights, centroids, max_iter)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
