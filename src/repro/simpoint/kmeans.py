"""Weighted k-means clustering (paper step 3).

A from-scratch Lloyd's-algorithm k-means with:

* **weights** — each point (interval) counts proportionally to its
  executed instructions, which is how SimPoint 3.0 "considers the
  number of instructions in each interval during the clustering
  process" for variable-length intervals;
* **k-means++ seeding** (weighted) with several restarts;
* **empty-cluster repair** — an emptied cluster is reseeded on the
  point farthest from its centroid.

Everything is seeded and deterministic.

Two Lloyd kernels implement the iteration:

* :func:`_lloyd` is the retained **reference** kernel: a full (n x k)
  distance matrix every iteration, with point norms hoisted out of the
  loop (computed once per call and shared with seeding and the final
  inertia pass).
* :func:`_lloyd_pruned` adds Hamerly-style triangle-inequality bound
  pruning on top: each point carries an upper bound on the distance to
  its own centroid and a lower bound on the distance to every other
  centroid, maintained across iterations from per-centroid movement.
  Points whose bounds prove the assignment cannot change (strictly,
  with a conservative floating-point margin) skip distance
  recomputation entirely; only the rest get fresh distance rows. The
  margin is strict-inequality-conservative, so exact ties (duplicate
  points, duplicate centroids) are always recomputed and resolve by
  the same lowest-index ``argmin`` rule as the reference — the pruned
  kernel is bit-identical to the reference, which the equivalence
  suite enforces.

The pruned kernel is the default; ``use_pruned=False`` (or
``REPRO_NO_PRUNED_KMEANS=1``) is the escape hatch back to the
reference. Restarts are independently seeded tasks (the k-means++
draws all come from one generator *before* any Lloyd run), so they can
fan out over ``jobs`` worker processes with the winner chosen by the
deterministic (inertia, restart-order) tie-break — bit-identical to
the serial order.

Pruning effectiveness is observable: both kernels tally the distance
rows they compute into the ``simpoint.kmeans_distance_rows`` counter,
and the pruned kernel counts every skipped point-iteration in
``simpoint.kmeans_pruned_points``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.observability import metrics
from repro.runtime.config import pruned_kmeans_enabled
from repro.runtime.parallel import parallel_map

#: Conservative slack on the Hamerly bound test. The bounds are exact
#: when set and drift by a few ulps as centroid movements are added and
#: subtracted across iterations; treating anything within this margin
#: as "must recompute" keeps the skip decision strictly sound under
#: floating point (over-recomputing is merely slower, never wrong).
_PRUNE_REL_MARGIN = 1e-9
_PRUNE_ABS_MARGIN = 1e-12


@dataclass(frozen=True)
class KMeansResult:
    """One clustering: centroids, per-point labels, weighted inertia."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])


def _point_norms(points: np.ndarray) -> np.ndarray:
    """Per-point squared norms — the hoisted invariant of every kernel."""
    return np.einsum("nd,nd->n", points, points)


def _squared_distances(
    points: np.ndarray,
    centroids: np.ndarray,
    point_norms: Optional[np.ndarray] = None,
    centroid_norms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """(n x k) matrix of squared euclidean distances.

    Expanded as ``||x||^2 - 2 x.c + ||c||^2`` so the dominant term is a
    single GEMM and peak memory is O(n*k) instead of the O(n*k*d)
    broadcast of explicit differences. The expansion can go slightly
    negative under floating-point cancellation, so it is clamped at 0.

    ``point_norms`` (and ``centroid_norms``) may be passed precomputed;
    the arithmetic is identical either way, so hoisting the norms out
    of a loop never changes a result.
    """
    if point_norms is None:
        point_norms = _point_norms(points)
    if centroid_norms is None:
        centroid_norms = np.einsum("kd,kd->k", centroids, centroids)
    distances = point_norms[:, None] - 2.0 * (points @ centroids.T)
    distances += centroid_norms[None, :]
    return np.maximum(distances, 0.0, out=distances)


def _kmeanspp_init(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    rng: np.random.Generator,
    point_norms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Weighted k-means++ seeding.

    Each added centroid needs only its own single-centroid distance
    column; the per-point norms are hoisted in from the caller (or
    computed once here), instead of being recomputed for every
    centroid as a full ``_squared_distances`` pass used to do.
    """
    n = points.shape[0]
    if point_norms is None:
        point_norms = _point_norms(points)
    first = int(rng.choice(n, p=weights / weights.sum()))
    centroids = [points[first]]
    closest = _squared_distances(
        points, points[first][None, :], point_norms
    )[:, 0]
    for _ in range(1, k):
        scores = closest * weights
        total = scores.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids; any
            # choice yields the same clustering.
            index = int(rng.integers(n))
        else:
            index = int(rng.choice(n, p=scores / total))
        centroid = points[index]
        centroids.append(centroid)
        dist = _squared_distances(points, centroid[None, :], point_norms)[:, 0]
        np.minimum(closest, dist, out=closest)
    return np.stack(centroids)


def _repair_empty_clusters(
    points: np.ndarray,
    centroids: np.ndarray,
    distances: np.ndarray,
    new_labels: np.ndarray,
) -> bool:
    """Reseed empty clusters on the overall farthest point.

    ``point_dists`` (each point's distance to its own centroid) is
    masked after every repair: the reseeded point now sits *on* its
    centroid, so a second empty cluster must pick a different point
    instead of re-stealing the same one through stale distances.
    Returns whether any repair happened (centroids moved mid-iteration).
    """
    k = centroids.shape[0]
    point_dists: Optional[np.ndarray] = None
    for cluster in range(k):
        if not np.any(new_labels == cluster):
            if point_dists is None:
                point_dists = distances[
                    np.arange(len(new_labels)), new_labels
                ].copy()
            farthest = int(point_dists.argmax())
            new_labels[farthest] = cluster
            centroids[cluster] = points[farthest]
            point_dists[farthest] = 0.0
    return point_dists is not None


def _update_centroids(
    points: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
) -> None:
    k = centroids.shape[0]
    for cluster in range(k):
        members = labels == cluster
        member_weights = weights[members]
        total = member_weights.sum()
        if total > 0:
            centroids[cluster] = (
                points[members] * member_weights[:, None]
            ).sum(axis=0) / total


def _final_inertia(
    points: np.ndarray,
    weights: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    point_norms: np.ndarray,
) -> float:
    distances = _squared_distances(points, centroids, point_norms)
    return float(
        (distances[np.arange(len(labels)), labels] * weights).sum()
    )


def _lloyd(
    points: np.ndarray,
    weights: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
    point_norms: Optional[np.ndarray] = None,
) -> KMeansResult:
    """The reference Lloyd kernel: full distance matrix per iteration."""
    n = points.shape[0]
    if point_norms is None:
        point_norms = _point_norms(points)
    labels = np.full(n, -1, dtype=np.int64)
    iterations = 0
    distance_rows = 0
    for iterations in range(1, max_iter + 1):
        distances = _squared_distances(points, centroids, point_norms)
        distance_rows += n
        new_labels = distances.argmin(axis=1)
        _repair_empty_clusters(points, centroids, distances, new_labels)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        _update_centroids(points, weights, labels, centroids)
    inertia = _final_inertia(points, weights, centroids, labels, point_norms)
    metrics.counter("simpoint.kmeans_distance_rows").inc(distance_rows + n)
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia,
        iterations=iterations,
    )


def _lloyd_pruned(
    points: np.ndarray,
    weights: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
    point_norms: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Hamerly-pruned Lloyd, bit-identical to :func:`_lloyd`.

    Invariants (in euclidean distance, not squared): ``upper[i]`` is an
    upper bound on point i's distance to its assigned centroid and
    ``lower[i]`` a lower bound on its distance to every *other*
    centroid. After centroids move, ``upper`` inflates by the assigned
    centroid's movement and ``lower`` deflates by the largest movement
    (triangle inequality). A point with ``upper`` strictly below
    ``lower`` (margin-adjusted) provably keeps its lowest-index argmin
    assignment, so its distance row is skipped; every other point —
    including all exact ties, which fail the strict test — gets a
    fresh row and resolves exactly as the reference does. Iterations
    that repair an empty cluster fall back to the reference's full
    assignment so the repair sees exact distances, and invalidate the
    bounds (repair moves centroids mid-iteration).
    """
    k = centroids.shape[0]
    n = points.shape[0]
    if point_norms is None:
        point_norms = _point_norms(points)
    if k < 2:
        return _lloyd(points, weights, centroids, max_iter, point_norms)
    labels = np.full(n, -1, dtype=np.int64)
    upper = np.zeros(n)
    lower = np.zeros(n)
    movement = np.zeros(k)
    bounds_valid = False
    iterations = 0
    pruned_points = 0
    distance_rows = 0
    for iterations in range(1, max_iter + 1):
        distances: Optional[np.ndarray] = None
        if not bounds_valid:
            distances = _squared_distances(points, centroids, point_norms)
            distance_rows += n
            new_labels = distances.argmin(axis=1)
            nearest_two = np.partition(distances, 1, axis=1)
            upper = np.sqrt(nearest_two[:, 0])
            lower = np.sqrt(nearest_two[:, 1])
        else:
            upper += movement[labels]
            lower -= movement.max()
            stale = (
                upper * (1.0 + _PRUNE_REL_MARGIN) + _PRUNE_ABS_MARGIN
                >= lower
            )
            new_labels = labels.copy()
            n_stale = int(np.count_nonzero(stale))
            pruned_points += n - n_stale
            if n_stale:
                rows = _squared_distances(
                    points[stale], centroids, point_norms[stale]
                )
                distance_rows += n_stale
                new_labels[stale] = rows.argmin(axis=1)
                nearest_two = np.partition(rows, 1, axis=1)
                upper[stale] = np.sqrt(nearest_two[:, 0])
                lower[stale] = np.sqrt(nearest_two[:, 1])
        if np.bincount(new_labels, minlength=k).min() == 0:
            # Rare: redo this iteration's assignment the reference way
            # (full matrix) so the repair ranks every point by its
            # exact distance, then rebuild bounds next iteration.
            if distances is None:
                distances = _squared_distances(
                    points, centroids, point_norms
                )
                distance_rows += n
                new_labels = distances.argmin(axis=1)
            _repair_empty_clusters(points, centroids, distances, new_labels)
            bounds_valid = False
        else:
            bounds_valid = True
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        old_centroids = centroids.copy()
        _update_centroids(points, weights, labels, centroids)
        if bounds_valid:
            moved = centroids - old_centroids
            movement = np.sqrt(np.einsum("kd,kd->k", moved, moved))
    inertia = _final_inertia(points, weights, centroids, labels, point_norms)
    if pruned_points:
        metrics.counter("simpoint.kmeans_pruned_points").inc(pruned_points)
    metrics.counter("simpoint.kmeans_distance_rows").inc(distance_rows + n)
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia,
        iterations=iterations,
    )


def _run_lloyd(
    points: np.ndarray,
    weights: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
    use_pruned: Optional[bool] = None,
    point_norms: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Dispatch one Lloyd run to the pruned or reference kernel."""
    kernel = _lloyd_pruned if pruned_kmeans_enabled(use_pruned) else _lloyd
    return kernel(points, weights, centroids, max_iter, point_norms)


def _restart_task(task) -> KMeansResult:
    """Worker: one independent Lloyd restart from a precomputed init.

    Module-level so :func:`~repro.runtime.parallel.parallel_map` can
    pickle it; the task tuple carries the hoisted point norms so the
    serial and parallel paths run the same arithmetic.
    """
    points, weights, init, max_iter, use_pruned, point_norms = task
    return _run_lloyd(points, weights, init, max_iter, use_pruned, point_norms)


def restart_tasks(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    n_init: int,
    max_iter: int,
    seed: int,
    use_pruned: Optional[bool] = None,
    point_norms: Optional[np.ndarray] = None,
) -> List[tuple]:
    """Materialize the ``n_init`` restart tasks for one (k, seed).

    All k-means++ randomness is drawn here, serially, from one
    generator — exactly the draws the serial restart loop would make —
    so the returned tasks are pure, independently runnable Lloyd
    invocations. :func:`choose_clustering` concatenates the task lists
    of every probed k into one flat ``parallel_map`` fan-out.
    """
    if point_norms is None:
        point_norms = _point_norms(points)
    rng = np.random.default_rng(seed)
    return [
        (
            points,
            weights,
            _kmeanspp_init(points, weights, k, rng, point_norms).copy(),
            max_iter,
            use_pruned,
            point_norms,
        )
        for _ in range(max(1, n_init))
    ]


def _best_restart(results: Sequence[KMeansResult]) -> KMeansResult:
    """The deterministic (inertia, restart-order) winner.

    Strictly-smaller-inertia-wins with ties keeping the earliest
    restart — exactly the serial loop's "replace only on improvement"
    rule, so a parallel fan-out picks the same clustering.
    """
    best = results[0]
    for result in results[1:]:
        if result.inertia < best.inertia:
            best = result
    return best


def weighted_kmeans(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    n_init: int = 5,
    max_iter: int = 100,
    seed: int = 0,
    *,
    use_pruned: Optional[bool] = None,
    jobs: Optional[int] = None,
    point_norms: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` clusters, minimizing weighted inertia.

    Runs ``n_init`` k-means++-seeded restarts and returns the best by
    the (inertia, restart-order) tie-break. All seeding randomness is
    drawn up front, so the restarts are independent Lloyd tasks that
    fan out over ``jobs`` worker processes (default: the runtime
    configuration) bit-identically to the serial order. ``use_pruned``
    selects the Hamerly-pruned kernel (default) or the reference
    kernel (``False``); both produce identical results.
    ``point_norms`` may carry the per-point squared norms hoisted by a
    caller that clusters the same points repeatedly.

    Raises :class:`~repro.errors.ClusteringError` if ``k`` exceeds the
    number of points or parameters are out of range.
    """
    if points.ndim != 2 or points.shape[0] == 0:
        raise ClusteringError("weighted_kmeans expects a non-empty 2-D array")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (n,):
        raise ClusteringError("weights must be one per point")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ClusteringError("weights must be non-negative with positive sum")
    if k == 1:
        centroid = (points * weights[:, None]).sum(axis=0) / weights.sum()
        diffs = points - centroid
        inertia = float(
            (np.einsum("nd,nd->n", diffs, diffs) * weights).sum()
        )
        return KMeansResult(
            centroids=centroid[None, :],
            labels=np.zeros(n, dtype=np.int64),
            inertia=inertia,
            iterations=1,
        )
    tasks = restart_tasks(
        points, weights, k, n_init, max_iter, seed, use_pruned, point_norms
    )
    results: List[KMeansResult] = parallel_map(_restart_task, tasks, jobs=jobs)
    return _best_restart(results)
