"""Choosing k and picking simulation points (paper steps 4-5).

``choose_clustering`` runs weighted k-means for every k up to the
budget, scores each clustering with the BIC, and — following SimPoint
3.0 — picks the *smallest* k whose (min-max normalized) BIC score
reaches a threshold (default 0.9) of the best score seen.

``pick_simulation_points`` then selects, per cluster, the member
interval closest to the centroid as the phase's simulation point, with
a weight equal to the phase's share of executed instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ClusteringError
from repro.observability import metrics, trace
from repro.runtime.parallel import parallel_map
from repro.simpoint.bic import bic_score
from repro.simpoint.kmeans import (
    KMeansResult,
    _best_restart,
    _point_norms,
    _restart_task,
    restart_tasks,
    weighted_kmeans,
)


def _score_and_record(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    result: KMeansResult,
) -> float:
    """Score one clustering with the BIC and record its kernel metrics."""
    with trace.span("cluster", k=k):
        score = bic_score(points, result, weights)
    metrics.counter("simpoint.kmeans_runs").inc()
    metrics.counter("simpoint.kmeans_iterations").inc(result.iterations)
    # Iterations-to-convergence per k: harder k values converging
    # slower (or suddenly faster) is a kernel-level drift signal the
    # stage totals cannot show.
    metrics.histogram(f"simpoint.kmeans_iterations.k{k}").observe(
        result.iterations
    )
    return score


def _cluster_and_score(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    n_init: int,
    max_iter: int,
    seed: int,
    use_pruned: Optional[bool] = None,
    jobs: Optional[int] = None,
    point_norms: Optional[np.ndarray] = None,
) -> Tuple[KMeansResult, float]:
    """One instrumented clustering: k-means at ``k`` plus its BIC."""
    result = weighted_kmeans(
        points, k, weights, n_init=n_init, max_iter=max_iter,
        seed=seed + k, use_pruned=use_pruned, jobs=jobs,
        point_norms=point_norms,
    )
    score = _score_and_record(points, weights, k, result)
    return result, score


@dataclass(frozen=True)
class ClusteringChoice:
    """The chosen clustering plus the full BIC trace."""

    result: KMeansResult
    k: int
    bic_scores: Tuple[float, ...]  # indexed by k-1
    chosen_index: int


def choose_clustering(
    points: np.ndarray,
    weights: np.ndarray,
    max_k: int,
    bic_threshold: float = 0.9,
    n_init: int = 5,
    max_iter: int = 100,
    seed: int = 0,
    *,
    use_pruned: Optional[bool] = None,
    jobs: Optional[int] = None,
) -> ClusteringChoice:
    """Cluster for k = 1..max_k and pick by the SimPoint BIC rule.

    The (k, restart) grid is one flat list of independent Lloyd tasks:
    every restart of every k is seeded up front (per-k generator at
    ``seed + k``, draws in restart order — exactly the serial
    sequence) and fanned out through
    :func:`~repro.runtime.parallel.parallel_map` over ``jobs``
    workers. Each k keeps its best restart by the deterministic
    (inertia, restart-order) tie-break, so the chosen clustering is
    bit-identical to the serial order. Point norms are hoisted once
    for the whole sweep.
    """
    if not 0.0 < bic_threshold <= 1.0:
        raise ClusteringError(
            f"bic_threshold must be in (0, 1], got {bic_threshold}"
        )
    n = points.shape[0]
    k_max = min(max_k, n)
    if k_max < 1:
        raise ClusteringError("need at least one interval to cluster")
    # k = 1 is a closed form (no restarts, no rng); run it first so
    # input validation errors surface before any fan-out.
    results: List[KMeansResult] = [
        weighted_kmeans(
            points, 1, weights, n_init=n_init, max_iter=max_iter,
            seed=seed + 1,
        )
    ]
    if k_max > 1:
        weights = np.asarray(weights, dtype=np.float64)
        point_norms = _point_norms(points)
        tasks: List[tuple] = []
        spans: List[Tuple[int, int]] = []  # flat-list slice per k
        for k in range(2, k_max + 1):
            k_tasks = restart_tasks(
                points, weights, k, n_init, max_iter, seed + k,
                use_pruned, point_norms,
            )
            spans.append((len(tasks), len(tasks) + len(k_tasks)))
            tasks.extend(k_tasks)
        flat = parallel_map(_restart_task, tasks, jobs=jobs)
        for start, stop in spans:
            results.append(_best_restart(flat[start:stop]))
    scores: List[float] = []
    for k, result in enumerate(results, start=1):
        scores.append(_score_and_record(points, weights, k, result))
    best = max(scores)
    worst = min(scores)
    spread = best - worst
    if spread <= 0:
        chosen = 0  # all equal: smallest k wins
    else:
        chosen = next(
            i
            for i, score in enumerate(scores)
            if (score - worst) / spread >= bic_threshold
        )
    return ClusteringChoice(
        result=results[chosen],
        k=chosen + 1,
        bic_scores=tuple(scores),
        chosen_index=chosen,
    )


def choose_clustering_binary_search(
    points: np.ndarray,
    weights: np.ndarray,
    max_k: int,
    bic_threshold: float = 0.9,
    n_init: int = 5,
    max_iter: int = 100,
    seed: int = 0,
    *,
    use_pruned: Optional[bool] = None,
    jobs: Optional[int] = None,
) -> ClusteringChoice:
    """SimPoint 3.0's binary search over k.

    Instead of clustering at every k, evaluate k=1 and k=maxK, then
    bisect for the smallest k whose min-max-normalized BIC reaches the
    threshold — O(log maxK) clusterings. Normalization uses the two
    *endpoint* scores (k=1 and k=maxK), fixed up front: on a monotone
    BIC curve they are the extremes, so this matches the exhaustive
    rule exactly, and — unlike normalizing against whichever scores the
    bisection happened to evaluate so far — a k's qualification cannot
    change as the search proceeds. When the curve is not monotone the
    chosen k is re-validated at the end and, if it fails the threshold
    under the endpoint normalization, replaced by the smallest
    evaluated k that passes (the best-scoring evaluated k always does).
    """
    if not 0.0 < bic_threshold <= 1.0:
        raise ClusteringError(
            f"bic_threshold must be in (0, 1], got {bic_threshold}"
        )
    n = points.shape[0]
    k_max = min(max_k, n)
    if k_max < 1:
        raise ClusteringError("need at least one interval to cluster")

    evaluated: Dict[int, Tuple[KMeansResult, float]] = {}
    # The bisection is inherently sequential over k, but each k's
    # restarts still fan out (and reuse the hoisted norms).
    point_norms = _point_norms(points)

    def evaluate(k: int) -> float:
        if k not in evaluated:
            evaluated[k] = _cluster_and_score(
                points, weights, k, n_init, max_iter, seed,
                use_pruned, jobs, point_norms,
            )
        return evaluated[k][1]

    # Fixed normalization endpoints — evaluated up front so every
    # qualification test uses the same scale.
    worst = min(evaluate(1), evaluate(k_max))
    best = max(evaluate(1), evaluate(k_max))
    spread = best - worst

    def qualifies(k: int) -> bool:
        if spread <= 0:
            return True
        return (evaluate(k) - worst) / spread >= bic_threshold

    low, high = 1, k_max
    if qualifies(1):
        high = 1
    while low < high:
        mid = (low + high) // 2
        if qualifies(mid):
            high = mid
        else:
            low = mid + 1
    chosen_k = low
    evaluate(chosen_k)
    if not qualifies(chosen_k):
        # Non-monotone curve: bisection landed on a k that fails the
        # threshold (e.g. the never-tested k_max after every midpoint
        # failed). Fall back to the smallest evaluated k that passes;
        # at least the argmax of the evaluated scores always does.
        chosen_k = min(
            k for k in evaluated if qualifies(k)
        )
    # Report the evaluated scores in k order (sparse trace).
    trace = tuple(
        evaluated[k][1] for k in sorted(evaluated)
    )
    return ClusteringChoice(
        result=evaluated[chosen_k][0],
        k=chosen_k,
        bic_scores=trace,
        chosen_index=sorted(evaluated).index(chosen_k),
    )


@dataclass(frozen=True)
class RepresentativePick:
    """One cluster's simulation point."""

    cluster: int
    interval_index: int
    weight: float


def pick_simulation_points(
    points: np.ndarray,
    weights: np.ndarray,
    result: KMeansResult,
) -> Tuple[RepresentativePick, ...]:
    """Pick each cluster's representative: the member nearest its centroid.

    Weights are the fraction of total executed instructions in the
    cluster (the paper's simulation-point weights). Clusters that ended
    up empty (possible only in degenerate inputs) are skipped.
    """
    total_weight = float(weights.sum())
    if not total_weight > 0:
        # An all-zero (or negative, or NaN) weight vector would divide
        # through to NaN weights that silently poison every downstream
        # CPI estimate — refuse instead.
        raise ClusteringError(
            f"interval weights must sum to a positive value, got "
            f"{total_weight}"
        )
    picks: List[RepresentativePick] = []
    for cluster in range(result.k):
        members = np.flatnonzero(result.labels == cluster)
        if members.size == 0:
            continue
        diffs = points[members] - result.centroids[cluster]
        distances = np.einsum("nd,nd->n", diffs, diffs)
        # Ties happen when a phase's intervals have (near-)identical
        # BBVs — common for strongly periodic programs. Canonical
        # SimPoint leaves tie-breaking unspecified; always taking the
        # *first* tied interval systematically selects the coldest-cache
        # occurrence of the phase, so among tied candidates we prefer
        # the temporally central one.
        min_distance = float(distances.min())
        tied = members[
            np.isclose(distances, min_distance, rtol=1e-9, atol=1e-15)
        ]
        representative = int(tied[len(tied) // 2])
        cluster_weight = float(weights[members].sum()) / total_weight
        picks.append(
            RepresentativePick(
                cluster=cluster,
                interval_index=representative,
                weight=cluster_weight,
            )
        )
    return tuple(picks)
