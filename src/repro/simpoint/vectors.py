"""Frequency-vector assembly and normalization.

Turns a list of sparse interval BBVs into a dense, row-normalized
matrix plus per-interval weights. Normalization follows the paper's
step 1: each frequency vector is scaled so its elements sum to 1, which
makes intervals comparable regardless of how many instructions they
executed — essential once variable-length intervals are in play. The
interval's executed-instruction count is kept separately as its
clustering weight (SimPoint 3.0's VLI support).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ClusteringError
from repro.profiling.intervals import Interval


@dataclass(frozen=True)
class VectorSet:
    """Dense, normalized interval vectors ready for clustering.

    ``matrix`` is (intervals x dimensions), rows summing to 1;
    ``weights`` is each interval's executed instruction count;
    ``dimension_keys`` maps matrix columns back to basic block ids.
    """

    matrix: np.ndarray
    weights: np.ndarray
    dimension_keys: Tuple[int, ...]

    @property
    def n_intervals(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_dimensions(self) -> int:
        return int(self.matrix.shape[1])


def build_vector_set(intervals: Sequence[Interval]) -> VectorSet:
    """Assemble and normalize interval BBVs into a :class:`VectorSet`."""
    if not intervals:
        raise ClusteringError("cannot build a vector set from zero intervals")
    keys: Dict[int, int] = {}
    for interval in intervals:
        for block_id in interval.bbv:
            if block_id not in keys:
                keys[block_id] = len(keys)
    if not keys:
        raise ClusteringError("no basic blocks recorded in any interval")
    matrix = np.zeros((len(intervals), len(keys)), dtype=np.float64)
    weights = np.zeros(len(intervals), dtype=np.float64)
    for row, interval in enumerate(intervals):
        for block_id, count in interval.bbv.items():
            matrix[row, keys[block_id]] = count
        weights[row] = interval.instructions
    row_sums = matrix.sum(axis=1)
    if np.any(row_sums <= 0):
        bad = int(np.argmin(row_sums))
        raise ClusteringError(f"interval {bad} has an empty/zero BBV")
    matrix /= row_sums[:, None]
    ordered_keys = tuple(sorted(keys, key=keys.get))
    return VectorSet(matrix=matrix, weights=weights, dimension_keys=ordered_keys)
