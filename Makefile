# Convenience targets for the Cross Binary Simulation Points reproduction.

PYTHON ?= python3

.PHONY: install test bench figures validate examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json BENCH_PR9.json

figures:
	$(PYTHON) -m repro figures

validate:
	$(PYTHON) -m repro validate

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/custom_program.py
	$(PYTHON) examples/isa_extension_study.py
	$(PYTHON) examples/compiler_optimization_study.py
	$(PYTHON) examples/phase_bias_anatomy.py
	$(PYTHON) examples/design_space_exploration.py

clean:
	rm -rf .pytest_cache .hypothesis build dist *.egg-info pinpoints.out
	find . -name __pycache__ -type d -exec rm -rf {} +
