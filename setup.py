"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` works offline through this
shim (the PEP 517 editable path needs ``wheel``, which may be absent).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
