#!/usr/bin/env python3
"""Bring your own program: the IR, end to end.

The built-in suite is generated, but nothing stops you from defining a
program by hand — this is the path a user takes to study their *own*
workload. This example builds a small two-phase program from raw IR,
compiles the four standard binaries, runs the cross-binary pipeline,
and prints the phase timeline plus per-binary estimates.

Run:  python examples/custom_program.py
"""

from repro import CrossBinaryConfig, run_cross_binary_simpoint
from repro.analysis.timeline import render_phase_timeline
from repro.cmpsim.simulator import CMPSim, VLITracker
from repro.compilation.compiler import compile_standard_binaries
from repro.programs.behaviors import pointer_chasing, streaming
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    finalize_program,
)
from repro.simpoint.simpoint import SimPointConfig

INTERVAL = 20_000


def build_my_program() -> Program:
    """A toy two-phase workload: a streaming pass, then graph chasing."""
    stream_pass = Procedure(
        name="stream_pass",
        body=(
            Loop(
                "stream_loop",
                trips=40,
                body=(
                    Compute("stream_kernel", instructions=120,
                            behavior=streaming(512 * 1024, 4, stride=16)),
                ),
            ),
        ),
        inlinable=False,
    )
    chase_pass = Procedure(
        name="chase_pass",
        body=(
            Loop(
                "chase_loop",
                trips=30,
                body=(
                    Compute("chase_kernel", instructions=90,
                            behavior=pointer_chasing(2 * 1024 * 1024, 3)),
                ),
            ),
        ),
        inlinable=False,
    )
    main = Procedure(
        name="main",
        body=(
            Loop(
                "epochs",
                trips=12,
                input_scaled=True,
                body=(
                    Call("call_stream", callee="stream_pass"),
                    Call("call_chase", callee="chase_pass"),
                ),
            ),
        ),
    )
    return finalize_program(
        Program(
            name="mywork",
            procedures={
                "main": main,
                "stream_pass": stream_pass,
                "chase_pass": chase_pass,
            },
            entry="main",
        )
    )


def main() -> None:
    print("== Custom program through the full pipeline ==\n")
    program = build_my_program()
    binaries = list(compile_standard_binaries(program).values())
    print("compiled:", ", ".join(binary.name for binary in binaries))

    result = run_cross_binary_simpoint(
        binaries,
        CrossBinaryConfig(
            interval_size=INTERVAL,
            simpoint=SimPointConfig(max_k=6),
        ),
    )
    match = result.match_report
    print(f"mappable points: {result.marker_set.n_points} "
          f"({match.procedures_matched} procedures, "
          f"{match.loop_entries_matched + match.loop_branches_matched} "
          f"loop markers)\n")
    print(
        render_phase_timeline(
            result.simpoint.labels,
            weights=result.weights_for(result.primary_name),
            title="mywork: mappable phases",
        )
    )

    print("\nper-binary estimates from the mapped simulation points:")
    for binary in binaries:
        tracker = VLITracker(
            result.marker_set.table_for(binary.name), result.boundaries
        )
        stats = CMPSim(binary).run_full(trackers=(tracker,)).stats
        weights = result.weights_for(binary.name)
        estimate = sum(
            weights[p.cluster] * tracker.intervals[p.interval_index].cpi
            for p in result.mapped_points
        )
        error = abs(estimate - stats.cpi) / stats.cpi
        print(f"  {binary.name}: true CPI {stats.cpi:.3f}, "
              f"estimated {estimate:.3f} (error {error:.2%})")


if __name__ == "__main__":
    main()
