#!/usr/bin/env python3
"""ISA extension study: comparing 32-bit and 64-bit binaries.

The paper's first motivating scenario: an architect wants to know how a
processor performs with IA32 vs Intel64 binaries of the same program.
That requires comparing *different binaries*, which is where per-binary
SimPoint's inconsistent bias bites and Cross Binary SimPoint's mappable
points help.

This example runs both methods on ``gcc`` (32-bit optimized vs 64-bit
optimized) and compares their speedup estimates against the true
full-simulation speedup.

Run:  python examples/isa_extension_study.py
"""

from repro.experiments.figures import pair_speedup_error
from repro.experiments.runner import run_benchmark

BENCHMARK = "gcc"
BASELINE, IMPROVED = "32o", "64o"


def main() -> None:
    print(f"== ISA extension study: {BENCHMARK}, "
          f"{BASELINE} vs {IMPROVED} ==\n")
    print("running both pipelines + detailed simulation "
          "(about half a minute)...\n")
    run = run_benchmark(BENCHMARK)

    for label in (BASELINE, IMPROVED):
        outcome = run.outcome(label)
        print(f"{label}: {outcome.stats.instructions:>12,} instructions, "
              f"true CPI {outcome.true_cpi:.3f}")

    print()
    for method in ("fli", "vli"):
        comparison = pair_speedup_error(run, method, BASELINE, IMPROVED)
        name = ("per-binary SimPoint (FLI)" if method == "fli"
                else "Cross Binary SimPoint (VLI)")
        print(f"{name}:")
        print(f"  true speedup      {comparison.true_speedup:.4f}")
        print(f"  estimated speedup {comparison.estimated_speedup:.4f}")
        print(f"  speedup error     {comparison.error:.2%}\n")

    fli = pair_speedup_error(run, "fli", BASELINE, IMPROVED)
    vli = pair_speedup_error(run, "vli", BASELINE, IMPROVED)
    if vli.error < fli.error:
        print("=> the mappable simulation points estimate the cross-ISA "
              "speedup more accurately, because the same execution "
              "regions are simulated in both binaries.")
    else:
        print("=> on this benchmark both methods happen to be close; "
              "the suite-wide averages (benchmarks/) show the gap.")


if __name__ == "__main__":
    main()
