#!/usr/bin/env python3
"""Anatomy of the bias problem (the paper's Tables 2 and 3).

Why does per-binary SimPoint mis-estimate cross-binary speedups even
though each binary's own CPI estimate is accurate? Because the *bias*
(which behaviours the sampled simulation under- or over-represents)
differs between the per-binary clusterings, while with mappable points
the same regions — and hence the same bias — are used everywhere.

This example prints the Table-2-style per-phase breakdown for gcc's
32-bit vs 64-bit unoptimized binaries, writes the cross-binary regions
file (the PinPoints-style artifact), and demonstrates reloading it and
simulating *only* those regions in a different binary.

Run:  python examples/phase_bias_anatomy.py
"""

import tempfile
from pathlib import Path

from repro.cmpsim.simcache import cached_region_run
from repro.cmpsim.simulator import regions_from_mapped_points
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.experiments.reporting import render_phase_comparison
from repro.experiments.runner import run_benchmark
from repro.experiments.tables import table2_gcc_phases
from repro.pinpoints.files import read_regions, write_regions
from repro.programs.suite import build_benchmark


def main() -> None:
    print("== Phase bias anatomy: gcc, 32u vs 64u ==\n")
    print("running both pipelines + detailed simulation "
          "(about half a minute)...\n")
    run = run_benchmark("gcc")

    comparison = table2_gcc_phases(run=run)
    print(render_phase_comparison(comparison))

    print("\nInterpretation: with FLI, a phase's bias (CPI err) can "
          "swing between the binaries,\nbecause each binary clustered "
          "its execution differently; with VLI the biases line\nup, so "
          "they cancel out of any cross-binary ratio.")

    # The regions file: the artifact that drives region simulation of
    # ANY binary in the matched set.
    with tempfile.TemporaryDirectory() as tmp:
        regions_path = Path(tmp) / "gcc.regions"
        write_regions(regions_path, run.cross.mapped_points)
        print(f"\nwrote {len(run.cross.mapped_points)} cross-binary "
              f"regions to {regions_path.name}:")
        for line in regions_path.read_text().splitlines()[:4]:
            print(f"  {line}")
        print("  ...")

        reloaded = read_regions(regions_path)

    # Simulate only those regions in the 64-bit unoptimized binary.
    binaries = compile_standard_binaries(build_benchmark("gcc"))
    target_64u = STANDARD_TARGETS[2]
    binary = binaries[target_64u]
    regions = regions_from_mapped_points(reloaded)
    table = run.cross.marker_set.table_for(binary.name)
    # Per-region content keys: a repeat run with a cache configured
    # re-simulates only regions whose boundaries actually changed.
    result = cached_region_run(binary, regions, table, warm=True)

    weights = run.cross.weights_for(binary.name)
    estimated_cpi = sum(
        weights[point.cluster] * result.region(point.cluster).cpi
        for point in reloaded
    )
    true_cpi = run.outcome("64u").true_cpi
    detailed = sum(
        result.region(point.cluster).instructions for point in reloaded
    )
    total = run.outcome("64u").stats.instructions
    print(f"\nregion simulation of {binary.name}: simulated "
          f"{detailed:,} of {total:,} instructions "
          f"({detailed / total:.1%})")
    print(f"estimated CPI {estimated_cpi:.3f} vs true {true_cpi:.3f} "
          f"(error {abs(estimated_cpi - true_cpi) / true_cpi:.2%})")


if __name__ == "__main__":
    main()
