#!/usr/bin/env python3
"""Design-space exploration: which (binary, architecture) pair wins?

The paper's introduction motivates cross-binary sampling with this
exact question. This example explores the four standard binaries of
``twolf`` across three memory systems (the paper's Table 1, a
4 MB-LLC variant, and a next-line-prefetch variant), comparing how
well each sampling method predicts the full-simulation ranking.

Run:  python examples/design_space_exploration.py   (~40 seconds)
"""

from repro.experiments.design_space import (
    STANDARD_DESIGN_SPACE,
    explore_design_space,
    render_design_space,
)

BENCHMARK = "twolf"


def main() -> None:
    print(f"== Design-space exploration: {BENCHMARK} x "
          f"{len(STANDARD_DESIGN_SPACE)} architectures ==\n")
    print("simulating 12 (binary, architecture) points in detail...\n")
    result = explore_design_space(BENCHMARK)
    print(render_design_space(result))

    print("\ncross-binary speedup error, per architecture "
          "(the paper's consistent-bias claim, on every machine):")
    for arch in STANDARD_DESIGN_SPACE:
        fli = result.cross_binary_error("fli", arch.name)
        vli = result.cross_binary_error("vli", arch.name)
        print(f"  {arch.name:<9} FLI {fli:6.2%}   VLI {vli:6.2%}")

    true_best = result.best_pair()
    print(f"\ntrue best design point: binary {true_best[0]} on "
          f"{true_best[1]}")
    for method, label in (("fli", "per-binary SimPoint"),
                          ("vli", "Cross Binary SimPoint")):
        picked = result.best_pair(method)
        verdict = "CORRECT" if picked == true_best else "WRONG"
        print(f"  {label:<24} picks {picked}  [{verdict}]")


if __name__ == "__main__":
    main()
