#!/usr/bin/env python3
"""Compiler optimization study: O0 vs O2 on one platform.

The paper's third motivating scenario: a compiler team evaluates the
effect of optimizations by simulation, before silicon exists. The
optimizer inlines procedures, unrolls and splits loops — exactly the
transformations that make naive cross-binary sampling inconsistent.

This example walks the cross-binary machinery explicitly (instead of
using the experiment harness): profile, match mappable points, build
VLIs on the primary, map, re-weigh, and compare both binaries on the
same semantic execution regions. It also shows what the optimizer did
and which of it the matcher recovered from.

Run:  python examples/compiler_optimization_study.py
"""

from repro import CrossBinaryConfig, build_benchmark, run_cross_binary_simpoint
from repro.cmpsim.simulator import CMPSim, VLITracker
from repro.compilation.compiler import compile_program
from repro.compilation.targets import TARGET_32O, TARGET_32U

BENCHMARK = "vortex"


def main() -> None:
    print(f"== Compiler optimization study: {BENCHMARK}, 32u vs 32o ==\n")
    program = build_benchmark(BENCHMARK)
    unoptimized, _ = compile_program(program, TARGET_32U)
    optimized, report = compile_program(program, TARGET_32O)

    print("optimizer report for the O2 binary:")
    print(f"  inlined procedures : {', '.join(report.inlined_procedures) or '-'}")
    print(f"  split loops        : {', '.join(report.split_loops) or '-'}")
    print(f"  unrolled loops     : "
          + (", ".join(f"{n} (x{f})" for n, f in report.unrolled_loops)
             or "-"))

    # The cross-binary pipeline: mappable points + VLIs + SimPoint.
    result = run_cross_binary_simpoint(
        [unoptimized, optimized], CrossBinaryConfig()
    )
    match = result.match_report
    print(f"\nmappable points: {result.marker_set.n_points} "
          f"({match.procedures_matched} procedures, "
          f"{match.loop_entries_matched} loop entries, "
          f"{match.loop_branches_matched} loop branches; "
          f"{match.loops_recovered_by_signature} recovered after inlining, "
          f"{match.loops_dropped_ambiguous} ambiguous)")
    print(f"{len(result.intervals)} mappable intervals on the primary "
          f"({result.primary_name})")

    # Simulate each binary once, attributing cycles to the mapped
    # intervals, then estimate per-binary CPI from the chosen points.
    print("\ndetailed simulation of both binaries...")
    estimates = {}
    for binary in (unoptimized, optimized):
        tracker = VLITracker(
            result.marker_set.table_for(binary.name), result.boundaries
        )
        stats = CMPSim(binary).run_full(trackers=(tracker,)).stats
        weights = result.weights_for(binary.name)
        estimated_cpi = sum(
            weights[p.cluster] * tracker.intervals[p.interval_index].cpi
            for p in result.mapped_points
        )
        estimates[binary.name] = (stats, estimated_cpi)
        print(f"  {binary.name}: {stats.instructions:>12,} instructions | "
              f"true CPI {stats.cpi:.3f} | estimated CPI "
              f"{estimated_cpi:.3f}")

    (stats_u, est_u) = estimates[unoptimized.name]
    (stats_o, est_o) = estimates[optimized.name]
    true_speedup = stats_u.cycles / stats_o.cycles
    est_speedup = (est_u * stats_u.instructions) / (
        est_o * stats_o.instructions
    )
    print(f"\nO0 -> O2 speedup: true {true_speedup:.3f}, "
          f"estimated {est_speedup:.3f} "
          f"(error {abs(true_speedup - est_speedup) / true_speedup:.2%})")


if __name__ == "__main__":
    main()
