#!/usr/bin/env python3
"""Quickstart: classic SimPoint on one binary.

Builds the synthetic ``art`` benchmark, compiles it for 32-bit O0,
profiles it into fixed-length-interval basic block vectors, lets
SimPoint pick the simulation points, and compares the weighted estimate
against full detailed simulation — the workflow of the paper's
Section 2 on a single binary.

Run:  python examples/quickstart.py [--trace-out out/trace.json]

With ``--trace-out`` (or ``REPRO_TRACE_OUT``) the run also writes a
``manifest.json`` next to the trace — per-stage wall times, cache
statistics, the chosen k with its BIC trace, and the final CPI error —
which ``python -m repro inspect`` pretty-prints.
"""

import argparse

from repro import build_benchmark, compile_program
from repro.analysis.estimate import estimate_from_points
from repro.cmpsim.simcache import cached_full_run
from repro.cmpsim.simulator import IntervalStats
from repro.compilation.targets import TARGET_32U
from repro.observability import observe, trace
from repro.profiling.bbv import collect_fli_bbvs
from repro.simpoint.simpoint import SimPointConfig, run_simpoint

INTERVAL_SIZE = 100_000  # scaled stand-in for the paper's 100M


def run(session=None) -> None:
    print("== Cross Binary SimPoint quickstart ==\n")

    config = SimPointConfig(max_k=10)
    if session is not None:
        session.record_config((("benchmark", "art"),
                               ("interval_size", INTERVAL_SIZE), config))

    with trace.span("build"):
        program = build_benchmark("art")
        binary, _ = compile_program(program, TARGET_32U)
    print(f"compiled {binary.name}: {len(binary.blocks)} basic blocks, "
          f"{len(binary.loops)} loops, {len(binary.symbols)} symbols")

    # 1. Profile into fixed-length intervals with BBVs.
    with trace.span("profile"):
        intervals = collect_fli_bbvs(binary, INTERVAL_SIZE)
    print(f"profiled {len(intervals)} intervals of "
          f"{INTERVAL_SIZE:,} instructions")

    # 2. SimPoint: cluster, choose k by BIC, pick representatives.
    with trace.span("cluster"):
        simpoint = run_simpoint(intervals, config)
    print(f"SimPoint chose k={simpoint.k} phases:")
    for point in simpoint.points:
        print(f"  phase {point.cluster}: interval {point.interval_index}, "
              f"weight {point.weight:.1%}")
    if session is not None:
        session.record_clustering(
            binary.name, k=simpoint.k, bic_scores=simpoint.bic_scores,
            n_points=simpoint.n_points,
        )

    # 3. Detailed simulation: one full run, tracking per-interval CPI.
    # Content-keyed: with a cache configured (REPRO_CACHE_DIR), a
    # repeat run reuses the sim result instead of re-simulating, with
    # byte-identical output either way.
    with trace.span("simulate"):
        tracked = cached_full_run(binary, fli_interval_size=INTERVAL_SIZE)
        stats = tracked.stats
    print(f"\nfull simulation: {stats.instructions:,} instructions, "
          f"CPI {stats.cpi:.3f}")

    # 4. Weighted estimate from just the chosen simulation points.
    with trace.span("estimate"):
        estimate = estimate_from_points(
            binary.name,
            "fli",
            [(p.interval_index, p.weight) for p in simpoint.points],
            tracked.fli_intervals,
            IntervalStats(
                instructions=stats.instructions, cycles=stats.cycles
            ),
        )
    sim_instr = sum(
        tracked.fli_intervals[p.interval_index].instructions
        for p in simpoint.points
    )
    print(f"sampled estimate: CPI {estimate.estimated_cpi:.3f} "
          f"(error {estimate.cpi_error:.2%}) from only "
          f"{sim_instr:,} simulated instructions "
          f"({sim_instr / stats.instructions:.1%} of the run)")
    if session is not None:
        session.record_errors(
            binary.name, {"fli_cpi_error": estimate.cpi_error}
        )
        from repro.analysis.phases import phase_table

        rows = phase_table(
            simpoint.labels,
            tracked.fli_intervals,
            {p.cluster: p.interval_index for p in simpoint.points},
            top=simpoint.k,
        )
        session.record_bias(
            binary.name,
            {
                row.cluster: {
                    "weight": row.weight,
                    "true_cpi": row.true_cpi,
                    "sp_cpi": row.sp_cpi,
                    "bias": row.cpi_error,
                }
                for row in rows
            },
        )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a JSON trace here plus manifest.json next to it "
             "(default: REPRO_TRACE_OUT)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write metric counters here as JSON "
             "(default: REPRO_METRICS_OUT)",
    )
    args = parser.parse_args(argv)
    with observe(
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        command=["examples/quickstart.py"],
    ) as session:
        run(session)


if __name__ == "__main__":
    main()
