#!/usr/bin/env python3
"""Quickstart: classic SimPoint on one binary.

Builds the synthetic ``art`` benchmark, compiles it for 32-bit O0,
profiles it into fixed-length-interval basic block vectors, lets
SimPoint pick the simulation points, and compares the weighted estimate
against full detailed simulation — the workflow of the paper's
Section 2 on a single binary.

Run:  python examples/quickstart.py
"""

from repro import build_benchmark, compile_program
from repro.analysis.estimate import estimate_from_points
from repro.cmpsim.simulator import CMPSim, FLITracker, IntervalStats
from repro.compilation.targets import TARGET_32U
from repro.profiling.bbv import collect_fli_bbvs
from repro.simpoint.simpoint import SimPointConfig, run_simpoint

INTERVAL_SIZE = 100_000  # scaled stand-in for the paper's 100M


def main() -> None:
    print("== Cross Binary SimPoint quickstart ==\n")

    program = build_benchmark("art")
    binary, _ = compile_program(program, TARGET_32U)
    print(f"compiled {binary.name}: {len(binary.blocks)} basic blocks, "
          f"{len(binary.loops)} loops, {len(binary.symbols)} symbols")

    # 1. Profile into fixed-length intervals with BBVs.
    intervals = collect_fli_bbvs(binary, INTERVAL_SIZE)
    print(f"profiled {len(intervals)} intervals of "
          f"{INTERVAL_SIZE:,} instructions")

    # 2. SimPoint: cluster, choose k by BIC, pick representatives.
    simpoint = run_simpoint(intervals, SimPointConfig(max_k=10))
    print(f"SimPoint chose k={simpoint.k} phases:")
    for point in simpoint.points:
        print(f"  phase {point.cluster}: interval {point.interval_index}, "
              f"weight {point.weight:.1%}")

    # 3. Detailed simulation: one full run, tracking per-interval CPI.
    tracker = FLITracker(INTERVAL_SIZE)
    stats = CMPSim(binary).run_full(trackers=(tracker,)).stats
    print(f"\nfull simulation: {stats.instructions:,} instructions, "
          f"CPI {stats.cpi:.3f}")

    # 4. Weighted estimate from just the chosen simulation points.
    estimate = estimate_from_points(
        binary.name,
        "fli",
        [(p.interval_index, p.weight) for p in simpoint.points],
        tracker.intervals,
        IntervalStats(instructions=stats.instructions, cycles=stats.cycles),
    )
    sim_instr = sum(
        tracker.intervals[p.interval_index].instructions
        for p in simpoint.points
    )
    print(f"sampled estimate: CPI {estimate.estimated_cpi:.3f} "
          f"(error {estimate.cpi_error:.2%}) from only "
          f"{sim_instr:,} simulated instructions "
          f"({sim_instr / stats.instructions:.1%} of the run)")


if __name__ == "__main__":
    main()
